//! `cargo xtask bench-diff OLD.json NEW.json` — the perf-regression gate.
//!
//! Compares two schema-versioned bench manifests (`BENCH_kernels.json` /
//! `BENCH_parallel.json`, see `crates/bench`) field by field:
//!
//! * **Deterministic counters** (`probes`, `pairs`) must match exactly —
//!   they are a function of the workload, not the host, so any drift is a
//!   behavioral change, not noise.
//! * **Wall-clock fields** (`secs_*`, `probes_per_sec`, `speedup`) are
//!   gated with a per-kernel noise tolerance: only a slowdown beyond the
//!   tolerance counts as a regression; speedups are reported but pass.
//! * **Host fingerprints** (`host_threads`, `catapult_threads`, `os`,
//!   `arch`) must match, because wall-clock numbers are meaningless
//!   across hosts. `--allow-cross-host` overrides the refusal and then
//!   compares *only* the deterministic counters.
//!
//! Exit codes mirror `xtask lint`: 0 pass, 1 regression, 2 usage /
//! refusal / malformed input.

use catapult_obs::json::{self, Value};

/// Fingerprint keys that make wall-clock numbers host-specific.
const FINGERPRINT_KEYS: [&str; 4] = ["host_threads", "catapult_threads", "os", "arch"];

/// Deterministic per-entry counters: exact match required.
const EXACT_FIELDS: [&str; 2] = ["probes", "pairs"];

/// Wall-clock per-entry fields and their direction: `true` = larger is
/// worse (times), `false` = smaller is worse (rates, speedups).
const NOISY_FIELDS: [(&str, bool); 5] = [
    ("secs_median", true),
    ("secs_sequential", true),
    ("secs_auto", true),
    ("probes_per_sec", false),
    ("speedup", false),
];

/// Default noise tolerance for wall-clock comparisons, in percent.
pub(crate) const DEFAULT_TOLERANCE_PCT: f64 = 30.0;

/// Per-kernel tolerance floor overrides: sub-millisecond kernels
/// (canonical forms, single-pair isomorphism) jitter far more between
/// runs than the long mcs/mccs sweeps, so they get extra headroom. The
/// effective tolerance is `max(override, --tolerance)`.
const KERNEL_TOLERANCE_PCT: [(&str, f64); 2] = [("canonical/-", 80.0), ("iso/-", 60.0)];

/// Options for one diff run.
#[derive(Debug, Clone)]
pub(crate) struct DiffOpts {
    /// Default wall-clock tolerance in percent (slowdowns beyond this fail).
    pub tolerance_pct: f64,
    /// Compare manifests from different hosts (deterministic fields only).
    pub allow_cross_host: bool,
    /// Skip wall-clock fields even on the same host (for low-rep CI runs
    /// whose timings jitter beyond any sensible tolerance).
    pub deterministic_only: bool,
}

impl Default for DiffOpts {
    fn default() -> Self {
        DiffOpts {
            tolerance_pct: DEFAULT_TOLERANCE_PCT,
            allow_cross_host: false,
            deterministic_only: false,
        }
    }
}

/// Outcome of a diff: human-readable lines plus the regression count.
#[derive(Debug, Default)]
pub(crate) struct DiffReport {
    /// One line per comparison worth reporting.
    pub lines: Vec<String>,
    /// Number of gate failures (exact mismatches + out-of-tolerance slowdowns).
    pub regressions: usize,
    /// True when fingerprints differed and only deterministic fields ran.
    pub cross_host: bool,
}

impl DiffReport {
    fn note(&mut self, line: String) {
        self.lines.push(line);
    }

    fn fail(&mut self, line: String) {
        self.regressions += 1;
        self.lines.push(format!("REGRESSION: {line}"));
    }
}

/// Diff two bench-manifest texts. `Err` means the inputs are not
/// comparable at all (malformed, schema mismatch, cross-host without the
/// override) — callers should treat that as a usage error, not a
/// regression.
pub(crate) fn diff(old_text: &str, new_text: &str, opts: &DiffOpts) -> Result<DiffReport, String> {
    let old = json::parse(old_text).map_err(|e| format!("OLD manifest: {e}"))?;
    let new = json::parse(new_text).map_err(|e| format!("NEW manifest: {e}"))?;

    let old_schema = uint_field(&old, "schema_version")
        .ok_or("OLD manifest has no numeric `schema_version`".to_string())?;
    let new_schema = uint_field(&new, "schema_version")
        .ok_or("NEW manifest has no numeric `schema_version`".to_string())?;
    if old_schema != new_schema {
        return Err(format!(
            "schema_version mismatch: OLD is v{old_schema}, NEW is v{new_schema}; \
             regenerate the older manifest before diffing"
        ));
    }

    let mut report = DiffReport::default();
    let mismatched: Vec<&str> = FINGERPRINT_KEYS
        .iter()
        .filter(|k| {
            // A key absent from both (e.g. a pre-fingerprint manifest)
            // does not count as a mismatch; present-vs-absent does.
            let (o, n) = (old.get(k), new.get(k));
            !(o == n || (o.is_none() && n.is_none()))
        })
        .copied()
        .collect();
    if !mismatched.is_empty() {
        if !opts.allow_cross_host {
            return Err(format!(
                "host fingerprint differs ({}): wall-clock numbers are not \
                 comparable across hosts; pass --allow-cross-host to compare \
                 only the deterministic counters",
                mismatched.join(", ")
            ));
        }
        report.cross_host = true;
        report.note(format!(
            "cross-host diff ({} differ): skipping wall-clock fields, \
             comparing deterministic counters only",
            mismatched.join(", ")
        ));
    }

    let old_entries = entries_by_key(&old)?;
    let new_entries = entries_by_key(&new)?;

    for (key, old_entry) in &old_entries {
        let Some(new_entry) = new_entries.iter().find(|(k, _)| k == key).map(|(_, e)| e) else {
            report.fail(format!("{key}: entry missing from NEW manifest"));
            continue;
        };
        diff_entry(key, old_entry, new_entry, opts, &mut report);
    }
    for (key, _) in &new_entries {
        if !old_entries.iter().any(|(k, _)| k == key) {
            report.note(format!(
                "{key}: new entry (not in OLD manifest), nothing to compare"
            ));
        }
    }
    Ok(report)
}

fn diff_entry(key: &str, old: &Value, new: &Value, opts: &DiffOpts, report: &mut DiffReport) {
    for field in EXACT_FIELDS {
        let (Some(o), Some(n)) = (uint_field(old, field), uint_field(new, field)) else {
            continue;
        };
        if o != n {
            report.fail(format!(
                "{key}: deterministic counter `{field}` changed {o} -> {n} \
                 (behavioral change, not timing noise)"
            ));
        }
    }
    if report.cross_host || opts.deterministic_only {
        return;
    }
    let tolerance = tolerance_pct_for(key, opts.tolerance_pct);
    for (field, larger_is_worse) in NOISY_FIELDS {
        let (Some(o), Some(n)) = (float_field(old, field), float_field(new, field)) else {
            continue;
        };
        if o <= 0.0 {
            continue; // cannot compute a ratio against a zero baseline
        }
        let change_pct = (n - o) / o * 100.0;
        let worse = if larger_is_worse {
            change_pct
        } else {
            -change_pct
        };
        if worse > tolerance {
            report.fail(format!(
                "{key}: `{field}` {o:.6} -> {n:.6} ({change_pct:+.1}%, \
                 tolerance ±{tolerance:.0}%)"
            ));
        } else if worse < -tolerance {
            report.note(format!(
                "{key}: `{field}` improved {o:.6} -> {n:.6} ({change_pct:+.1}%)"
            ));
        }
    }
}

/// Effective tolerance for one entry key: the per-kernel floor if listed,
/// never below the caller's default.
fn tolerance_pct_for(key: &str, default_pct: f64) -> f64 {
    KERNEL_TOLERANCE_PCT
        .iter()
        .find(|(k, _)| *k == key)
        .map_or(default_pct, |(_, pct)| pct.max(default_pct))
}

/// Pull `entries` out of a manifest and key each one: `kernel/variant`
/// for kernel benches, `workload` for parallel benches.
fn entries_by_key(manifest: &Value) -> Result<Vec<(String, &Value)>, String> {
    let Some(Value::Array(items)) = manifest.get("entries") else {
        return Err("manifest has no `entries` array".to_string());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let key = match (str_field(item, "kernel"), str_field(item, "variant")) {
            (Some(k), Some(v)) => format!("{k}/{v}"),
            _ => str_field(item, "workload")
                .map(str::to_string)
                .ok_or(format!(
                    "entry #{i} has neither `kernel`+`variant` nor `workload`"
                ))?,
        };
        if out.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate entry key `{key}`"));
        }
        out.push((key, item));
    }
    Ok(out)
}

fn uint_field(v: &Value, key: &str) -> Option<u64> {
    match v.get(key)? {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn float_field(v: &Value, key: &str) -> Option<f64> {
    match v.get(key)? {
        Value::Float(f) => Some(*f),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn str_field<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key)? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: &str = r#"{
  "schema_version": 1,
  "host_threads": 1,
  "catapult_threads": null,
  "os": "linux",
  "arch": "x86_64",
  "warmup_reps": 1,
  "pair_budget_nodes": 200000,
  "entries": [
    {"kernel": "mcs", "variant": "pruned", "secs_median": 0.100000, "reps": 5, "probes": 1234, "probes_per_sec": 12340.0, "pairs": 45},
    {"kernel": "canonical", "variant": "-", "secs_median": 0.000100, "reps": 5, "probes": 0, "probes_per_sec": 0.0, "pairs": 45}
  ]
}
"#;

    fn opts() -> DiffOpts {
        DiffOpts::default()
    }

    #[test]
    fn identical_manifests_pass() {
        let report = diff(KERNELS, KERNELS, &opts()).expect("comparable");
        assert_eq!(report.regressions, 0, "{:?}", report.lines);
        assert!(!report.cross_host);
    }

    #[test]
    fn probe_drift_is_a_regression_even_when_faster() {
        let new = KERNELS.replace("\"probes\": 1234", "\"probes\": 1233");
        let report = diff(KERNELS, &new, &opts()).expect("comparable");
        assert_eq!(report.regressions, 1);
        assert!(report.lines[0].contains("deterministic counter `probes`"));
    }

    #[test]
    fn slowdown_beyond_tolerance_fails_speedup_passes() {
        let slow = KERNELS.replace("\"secs_median\": 0.100000", "\"secs_median\": 0.140000");
        let report = diff(KERNELS, &slow, &opts()).expect("comparable");
        assert_eq!(report.regressions, 1, "{:?}", report.lines);
        assert!(report.lines[0].contains("secs_median"));

        let fast = KERNELS.replace("\"secs_median\": 0.100000", "\"secs_median\": 0.050000");
        let report = diff(KERNELS, &fast, &opts()).expect("comparable");
        assert_eq!(report.regressions, 0, "{:?}", report.lines);
        assert!(report.lines.iter().any(|l| l.contains("improved")));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let new = KERNELS.replace("\"secs_median\": 0.100000", "\"secs_median\": 0.120000");
        let report = diff(KERNELS, &new, &opts()).expect("comparable");
        assert_eq!(report.regressions, 0, "{:?}", report.lines);
    }

    #[test]
    fn micro_kernels_get_wider_tolerance() {
        // +50% on the sub-millisecond canonical kernel: within its 80%
        // floor, but far beyond the 30% default.
        let new = KERNELS.replace("\"secs_median\": 0.000100", "\"secs_median\": 0.000150");
        let report = diff(KERNELS, &new, &opts()).expect("comparable");
        assert_eq!(report.regressions, 0, "{:?}", report.lines);
        assert!((tolerance_pct_for("canonical/-", 30.0) - 80.0).abs() < 1e-9);
        assert!((tolerance_pct_for("canonical/-", 95.0) - 95.0).abs() < 1e-9);
        assert!((tolerance_pct_for("mcs/pruned", 30.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn cross_host_is_refused_unless_allowed() {
        let other = KERNELS.replace("\"host_threads\": 1", "\"host_threads\": 8");
        let err = diff(KERNELS, &other, &opts()).expect_err("must refuse");
        assert!(err.contains("--allow-cross-host"), "{err}");

        let allowed = DiffOpts {
            allow_cross_host: true,
            ..opts()
        };
        // Cross-host mode still catches deterministic drift but ignores
        // a wall-clock swing that would otherwise fail.
        let other = other
            .replace("\"secs_median\": 0.100000", "\"secs_median\": 0.900000")
            .replace("\"probes\": 1234", "\"probes\": 99");
        let report = diff(KERNELS, &other, &allowed).expect("comparable");
        assert!(report.cross_host);
        assert_eq!(report.regressions, 1, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|l| l.contains("deterministic counter `probes`")));
    }

    #[test]
    fn deterministic_only_skips_wall_clock_even_same_host() {
        let slow = KERNELS.replace("\"secs_median\": 0.100000", "\"secs_median\": 0.900000");
        let det = DiffOpts {
            deterministic_only: true,
            ..opts()
        };
        let report = diff(KERNELS, &slow, &det).expect("comparable");
        assert_eq!(report.regressions, 0, "{:?}", report.lines);
        // Probe drift still fails.
        let drift = slow.replace("\"probes\": 1234", "\"probes\": 4321");
        let report = diff(KERNELS, &drift, &det).expect("comparable");
        assert_eq!(report.regressions, 1);
    }

    #[test]
    fn fingerprint_absent_from_both_is_not_cross_host() {
        // Pre-fingerprint manifests (no os/arch/catapult_threads keys)
        // must stay diffable against each other.
        let legacy = r#"{
  "schema_version": 1,
  "host_threads": 1,
  "entries": [
    {"workload": "mining", "secs_sequential": 1.0, "secs_auto": 1.0, "auto_threads": 1, "speedup": 1.0}
  ]
}
"#;
        let report = diff(legacy, legacy, &opts()).expect("comparable");
        assert_eq!(report.regressions, 0);
        assert!(!report.cross_host);
    }

    #[test]
    fn missing_entry_fails_extra_entry_notes() {
        let one_entry = KERNELS.replace(
            "    {\"kernel\": \"canonical\", \"variant\": \"-\", \"secs_median\": 0.000100, \"reps\": 5, \"probes\": 0, \"probes_per_sec\": 0.0, \"pairs\": 45}\n",
            "",
        );
        let one_entry = one_entry.replace("\"pairs\": 45},", "\"pairs\": 45}");
        let report = diff(KERNELS, &one_entry, &opts()).expect("comparable");
        assert_eq!(report.regressions, 1);
        assert!(report.lines[0].contains("missing from NEW"));

        let report = diff(&one_entry, KERNELS, &opts()).expect("comparable");
        assert_eq!(report.regressions, 0, "{:?}", report.lines);
        assert!(report.lines.iter().any(|l| l.contains("new entry")));
    }

    #[test]
    fn schema_and_parse_errors_are_usage_errors() {
        assert!(diff("{", KERNELS, &opts()).is_err());
        assert!(diff(KERNELS, "not json", &opts()).is_err());
        let v2 = KERNELS.replace("\"schema_version\": 1", "\"schema_version\": 2");
        let err = diff(KERNELS, &v2, &opts()).expect_err("schema mismatch");
        assert!(err.contains("schema_version mismatch"), "{err}");
        let none = KERNELS.replace("\"schema_version\": 1,\n", "");
        assert!(diff(&none, KERNELS, &opts()).is_err());
    }

    #[test]
    fn parallel_manifests_key_by_workload() {
        let parallel = r#"{
  "schema_version": 1,
  "host_threads": 1,
  "catapult_threads": null,
  "os": "linux",
  "arch": "x86_64",
  "entries": [
    {"workload": "mining", "secs_sequential": 2.0, "secs_auto": 2.0, "auto_threads": 1, "speedup": 1.0},
    {"workload": "fine-clustering", "secs_sequential": 1.0, "secs_auto": 1.0, "auto_threads": 1, "speedup": 1.0}
  ]
}
"#;
        let report = diff(parallel, parallel, &opts()).expect("comparable");
        assert_eq!(report.regressions, 0);
        // A collapsed speedup is a regression even when absolute times pass.
        let collapsed = parallel.replace(
            "\"auto_threads\": 1, \"speedup\": 1.0},",
            "\"auto_threads\": 1, \"speedup\": 0.4},",
        );
        let report = diff(parallel, &collapsed, &opts()).expect("comparable");
        assert_eq!(report.regressions, 1, "{:?}", report.lines);
        assert!(report.lines[0].contains("mining"));
        assert!(report.lines[0].contains("speedup"));
    }

    #[test]
    fn duplicate_entry_keys_are_rejected() {
        let dup = KERNELS.replace("\"kernel\": \"canonical\"", "\"kernel\": \"mcs\"");
        let dup = dup.replace("\"variant\": \"-\"", "\"variant\": \"pruned\"");
        assert!(diff(&dup, &dup, &opts()).is_err());
    }
}
