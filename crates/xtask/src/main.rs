//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The only task today is `lint`: a line-level static-analysis pass that
//! enforces repo-specific rules `clippy` cannot express:
//!
//! 1. **Kernel no-panic** — the NP-hard search kernels (`iso.rs`,
//!    `mcs.rs`, `ged.rs`, `walk.rs`, `select.rs`) must contain no
//!    `panic!` or `.unwrap()` outside their `#[cfg(test)]` modules. A
//!    panic inside a kernel aborts a whole selection run that may be
//!    hours into a large repository.
//! 2. **Doc coverage** — every public item in `crates/graph` and
//!    `crates/core` carries a doc comment (line-level, so it also covers
//!    items `rustc`'s `missing_docs` skips).
//! 3. **No float equality in scoring code** — pattern scores are damped
//!    products of f64 weights; `==`/`!=` against float literals is
//!    almost always a bug there. Use ranges or `total_cmp`.
//! 4. **Lint header** — every crate root states where the lint policy
//!    lives so readers do not have to guess.
//! 5. **Consume completeness** — library code outside the graph crate
//!    must not call the completeness-swallowing kernel conveniences
//!    (`contains`, `are_isomorphic`, `mccs_similarity`, ...). Those drop
//!    the `Completeness` tag, so a budget- or deadline-degraded search
//!    would pass silently. Use the `_tagged`/audited variants, or append
//!    `// xtask-allow: consume-completeness` after review (e.g. when a
//!    tripped probe only weakens a heuristic, never correctness).
//! 6. **No raw thread spawns** — `std::thread::spawn` is forbidden
//!    everywhere except the rayon shim (`shims/rayon`), which owns the
//!    execution model: pool sizing via `CATAPULT_THREADS`, ordered
//!    collection, and panic propagation. A stray spawn would bypass all
//!    three. Use `par_iter`/`join` from the shim instead, or annotate
//!    `// xtask-allow: no-raw-spawn` after review.
//! 7. **Observability hygiene** — two sub-checks. (a) Counter and
//!    histogram names registered on a `Recorder` follow the
//!    `stage.kernel.metric` convention (≥ 3 dot-separated lowercase
//!    segments), so manifests stay greppable and `stage_metric_total`
//!    keeps working. (b) `Instant::now()` is forbidden outside
//!    `crates/obs` and the shims: ad-hoc clocks bypass the recorder's
//!    epoch and the deadline plumbing — use `catapult_obs::now()`,
//!    `catapult_obs::Stopwatch`, or a span. Escape with
//!    `// xtask-allow: metric-name` / `// xtask-allow: raw-instant`.
//!
//! Exit status is non-zero when any rule fires; CI runs this next to
//! `cargo clippy`.

// Lint policy: see [workspace.lints] in the root Cargo.toml.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files holding the search kernels (rule 1).
const KERNEL_FILES: &[&str] = &[
    "crates/graph/src/iso.rs",
    "crates/graph/src/mcs.rs",
    "crates/graph/src/ged.rs",
    "crates/core/src/walk.rs",
    "crates/core/src/select.rs",
];

/// Crates whose public items must be documented line-by-line (rule 2).
const DOC_COVERED_DIRS: &[&str] = &["crates/graph/src", "crates/core/src"];

/// Files holding f64 scoring arithmetic (rule 3).
const SCORING_FILES: &[&str] = &[
    "crates/core/src/score.rs",
    "crates/core/src/select.rs",
    "crates/core/src/budget.rs",
    "crates/csg/src/weights.rs",
];

/// The agreed crate-root marker line (rule 4).
const LINT_HEADER: &str = "// Lint policy: see [workspace.lints] in the root Cargo.toml.";

/// Completeness-swallowing kernel conveniences (rule 5). Each needle
/// includes the opening paren so `_tagged` variants never match.
const SWALLOWING_KERNELS: &[&str] = &[
    "contains(",
    "are_isomorphic(",
    "mcs_similarity(",
    "mccs_similarity(",
    "find_embedding(",
    "embeddings(",
];

/// Library dirs rule 5 scans: every pipeline consumer of the kernels.
/// `crates/graph` is excluded — it *defines* the convenience wrappers.
const COMPLETENESS_COVERED_DIRS: &[&str] = &[
    "crates/cluster/src",
    "crates/core/src",
    "crates/csg/src",
    "crates/eval/src",
    "crates/mining/src",
    "src",
];

/// Per-line escape hatch: append `// xtask-allow: <rule>` to suppress a
/// finding after review.
const ALLOW_MARKER: &str = "xtask-allow:";

#[derive(Debug)]
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        other => {
            eprintln!(
                "usage: cargo xtask lint\n  (got {:?})",
                other.unwrap_or("<nothing>")
            );
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();

    for rel in KERNEL_FILES {
        check_kernel_no_panic(&root, rel, &mut findings);
    }
    for dir in DOC_COVERED_DIRS {
        for file in rust_files(&root.join(dir)) {
            check_doc_coverage(&root, &file, &mut findings);
        }
    }
    for rel in SCORING_FILES {
        check_no_float_eq(&root, rel, &mut findings);
    }
    check_lint_headers(&root, &mut findings);
    for dir in COMPLETENESS_COVERED_DIRS {
        for file in rust_files(&root.join(dir)) {
            check_consume_completeness(&file, &mut findings);
        }
    }
    for dir in spawn_covered_dirs(&root) {
        for file in rust_files(&dir) {
            check_no_raw_spawn(&file, &mut findings);
        }
    }
    for dir in obs_covered_dirs(&root) {
        for file in rust_files(&dir) {
            check_metric_names(&file, &mut findings);
            check_no_raw_instant(&file, &mut findings);
        }
    }

    if findings.is_empty() {
        println!("xtask lint: ok");
        ExitCode::SUCCESS
    } else {
        let mut report = String::new();
        for f in &findings {
            let _ = writeln!(
                report,
                "{}:{}: [{}] {}",
                f.file.display(),
                f.line,
                f.rule,
                f.message
            );
        }
        eprint!("{report}");
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Locate the workspace root: walk up from CWD until `Cargo.toml` with a
/// `[workspace]` table is found. `cargo xtask` runs from the root, but a
/// direct `cargo run -p xtask` from a crate directory also works.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// All `.rs` files directly inside `dir` (the crate layouts here are flat).
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Strip a trailing `// ...` comment (naive: ignores `//` inside string
/// literals, which is fine for flagging — comments never *hide* code).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn allowed(line: &str, rule: &str) -> bool {
    line.find(ALLOW_MARKER)
        .is_some_and(|i| line[i + ALLOW_MARKER.len()..].trim().starts_with(rule))
}

/// Rule 1: no `panic!` / `.unwrap()` in kernel files outside `#[cfg(test)]`.
fn check_kernel_no_panic(root: &Path, rel: &str, findings: &mut Vec<Finding>) {
    let path = root.join(rel);
    let Ok(text) = std::fs::read_to_string(&path) else {
        findings.push(Finding {
            file: path,
            line: 0,
            rule: "kernel-no-panic",
            message: "kernel file listed in xtask but missing".into(),
        });
        return;
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break; // Test modules sit at the bottom of each kernel file.
        }
        if allowed(line, "kernel-no-panic") {
            continue;
        }
        let code = code_part(line);
        for needle in ["panic!", ".unwrap()"] {
            if code.contains(needle) {
                findings.push(Finding {
                    file: path.clone(),
                    line: i + 1,
                    rule: "kernel-no-panic",
                    message: format!("`{needle}` in a search kernel outside #[cfg(test)]"),
                });
            }
        }
    }
}

/// Rule 2: public items in the covered crates carry a doc comment.
fn check_doc_coverage(root: &Path, path: &Path, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    const ITEM_KINDS: &[&str] = &[
        "fn ", "struct ", "enum ", "trait ", "const ", "type ", "mod ",
    ];
    for (i, raw) in lines.iter().enumerate() {
        let line = raw.trim_start();
        if line.trim_start().starts_with("#[cfg(test)]") {
            break; // Items below are test-only.
        }
        let Some(rest) = line.strip_prefix("pub ") else {
            continue;
        };
        if !ITEM_KINDS.iter().any(|k| rest.starts_with(k)) {
            continue;
        }
        if allowed(raw, "doc-coverage") {
            continue;
        }
        // Walk upwards over attributes and macro-generated spacing to find
        // the item's doc comment.
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let above = lines[j].trim_start();
            if above.starts_with("///") || above.starts_with("#[doc") {
                documented = true;
                break;
            }
            if above.starts_with("#[") || above.starts_with("#!") {
                continue; // attribute stack between doc and item
            }
            break;
        }
        // `pub mod x;` counts as documented when `x.rs` opens with `//!`
        // inner docs — the same shape rustc's `missing_docs` accepts.
        if !documented {
            if let Some(name) = rest.strip_prefix("mod ").and_then(|m| m.strip_suffix(';')) {
                documented = path
                    .parent()
                    .map(|dir| dir.join(format!("{name}.rs")))
                    .and_then(|p| std::fs::read_to_string(p).ok())
                    .is_some_and(|text| {
                        text.lines()
                            .find(|l| !l.trim().is_empty())
                            .is_some_and(|l| l.trim_start().starts_with("//!"))
                    });
            }
        }
        if !documented {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: i + 1,
                rule: "doc-coverage",
                message: format!("undocumented public item: `{}`", line.trim_end()),
            });
        }
    }
    let _ = root; // paths are already absolute; kept for signature symmetry
}

/// Rule 3: no `==` / `!=` against float literals in scoring code.
fn check_no_float_eq(root: &Path, rel: &str, findings: &mut Vec<Finding>) {
    let path = root.join(rel);
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        if allowed(line, "float-eq") {
            continue;
        }
        if has_float_eq(code_part(line)) {
            findings.push(Finding {
                file: path.clone(),
                line: i + 1,
                rule: "float-eq",
                message: "f64 equality comparison in scoring code (use ranges or total_cmp)".into(),
            });
        }
    }
}

/// Detect `== <float literal>` or `<float literal> ==` (and `!=`).
fn has_float_eq(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut k = 0;
    while let Some(off) = code[k..].find("==").or_else(|| code[k..].find("!=")) {
        let at = k + off;
        // Skip `<=`, `>=`, `===`-like sequences and pattern arms (`=>`).
        let before = bytes[..at].iter().rev().find(|b| !b.is_ascii_whitespace());
        if matches!(before, Some(b'<' | b'>' | b'=' | b'!')) {
            k = at + 2;
            continue;
        }
        let lhs_float = code[..at]
            .trim_end()
            .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
            .next()
            .is_some_and(is_float_literal);
        let rhs_float = code[at + 2..]
            .trim_start()
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
            .next()
            .is_some_and(is_float_literal);
        if lhs_float || rhs_float {
            return true;
        }
        k = at + 2;
    }
    false
}

fn is_float_literal(token: &str) -> bool {
    let token = token.trim_end_matches("f64").trim_end_matches("f32");
    let Some((int, frac)) = token.split_once('.') else {
        return false;
    };
    !int.is_empty()
        && int.bytes().all(|b| b.is_ascii_digit() || b == b'_')
        && frac.bytes().all(|b| b.is_ascii_digit() || b == b'_')
}

/// Rule 4: every crate root carries the lint-policy header.
fn check_lint_headers(root: &Path, findings: &mut Vec<Finding>) {
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for dir in ["crates", "shims"] {
        if let Ok(entries) = std::fs::read_dir(root.join(dir)) {
            for entry in entries.flatten() {
                let lib = entry.path().join("src/lib.rs");
                let main = entry.path().join("src/main.rs");
                if lib.is_file() {
                    roots.push(lib);
                } else if main.is_file() {
                    roots.push(main);
                }
            }
        }
    }
    roots.sort();
    for path in roots {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if !text.lines().any(|l| l.trim() == LINT_HEADER) {
            findings.push(Finding {
                file: path,
                line: 1,
                rule: "lint-header",
                message: format!("crate root is missing the marker line `{LINT_HEADER}`"),
            });
        }
    }
}

/// Dirs rule 6 scans: every source dir in the workspace (`src/bin` and
/// `crates/*/src/bin` included) except the rayon shim, which is the one
/// place allowed to own threads.
fn spawn_covered_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src"), root.join("src/bin"), root.join("tests")];
    for group in ["crates", "shims"] {
        if let Ok(entries) = std::fs::read_dir(root.join(group)) {
            for entry in entries.flatten() {
                if group == "shims" && entry.file_name() == "rayon" {
                    continue;
                }
                let src = entry.path().join("src");
                if src.is_dir() {
                    dirs.push(src.join("bin"));
                    dirs.push(src);
                }
            }
        }
    }
    dirs.sort();
    dirs
}

/// Rule 6: no `std::thread::spawn` outside the rayon shim.
fn check_no_raw_spawn(path: &Path, findings: &mut Vec<Finding>) {
    // Assembled at compile time so this scanner never flags itself.
    const SPAWN_NEEDLE: &str = concat!("thread::", "spawn(");
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    for (i, line) in text.lines().enumerate() {
        if allowed(line, "no-raw-spawn") {
            continue;
        }
        if code_part(line).contains(SPAWN_NEEDLE) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: i + 1,
                rule: "no-raw-spawn",
                message: "`thread::spawn` outside shims/rayon bypasses the pool size, \
                          ordered collection, and panic propagation; use par_iter/join \
                          or annotate `// xtask-allow: no-raw-spawn`"
                    .into(),
            });
        }
    }
}

/// Rule 5: kernel call sites outside tests must consume `Completeness`.
fn check_consume_completeness(path: &Path, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break; // Test modules sit at the bottom of each file.
        }
        // The marker may trail the call or sit on the line above it (the
        // latter survives rustfmt re-wrapping multi-line calls).
        if allowed(line, "consume-completeness")
            || (i > 0 && allowed(lines[i - 1], "consume-completeness"))
        {
            continue;
        }
        if let Some(needle) = swallowed_kernel_call(code_part(line)) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: i + 1,
                rule: "consume-completeness",
                message: format!(
                    "`{}...)` drops the Completeness tag; use the _tagged/audited \
                     variant or annotate `// xtask-allow: consume-completeness`",
                    needle
                ),
            });
        }
    }
}

/// Find a bare call to a swallowing kernel wrapper on this line.
///
/// A match is a finding only when it is a free-function call: a needle
/// preceded by an identifier character is a different function (for
/// example `contains_tagged(` never matches, `brute_force_contains(`
/// is some local helper), a needle preceded by `.` is a method call
/// (`Vec::contains`, `RangeInclusive::contains`), and a needle preceded
/// by `fn` is the definition of an unrelated same-named item.
fn swallowed_kernel_call(code: &str) -> Option<&'static str> {
    for needle in SWALLOWING_KERNELS {
        let mut k = 0;
        while let Some(off) = code[k..].find(needle) {
            let at = k + off;
            let before = code[..at].chars().next_back();
            let part_of_ident = before.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            let method_call = before == Some('.');
            let definition = code[..at].trim_end().ends_with("fn");
            if !part_of_ident && !method_call && !definition {
                return Some(needle);
            }
            k = at + needle.len();
        }
    }
    None
}

/// Dirs rule 7 scans: everything rule 6 covers except `crates/obs`
/// (which owns the clock and registers counters from computed names),
/// plus `examples/`.
fn obs_covered_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = spawn_covered_dirs(root)
        .into_iter()
        .filter(|d| !d.starts_with(root.join("crates/obs")))
        .filter(|d| !d.starts_with(root.join("shims")))
        .collect();
    dirs.push(root.join("examples"));
    dirs.sort();
    dirs
}

/// Rule 7a: metric names registered on a recorder follow
/// `stage.kernel.metric` (≥ 3 lowercase dot-separated segments).
fn check_metric_names(path: &Path, findings: &mut Vec<Finding>) {
    const METRIC_CALLS: &[&str] = &[".counter(\"", ".histogram(\""];
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break; // Test modules sit at the bottom of each file.
        }
        if allowed(line, "metric-name") {
            continue;
        }
        let code = code_part(line);
        for needle in METRIC_CALLS {
            let Some(at) = code.find(needle) else {
                continue;
            };
            let lit = &code[at + needle.len()..];
            let Some(end) = lit.find('"') else { continue };
            let name = &lit[..end];
            if !valid_metric_name(name) {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: "metric-name",
                    message: format!(
                        "metric name `{name}` violates the `stage.kernel.metric` \
                         convention (>= 3 lowercase dot-separated segments)"
                    ),
                });
            }
        }
    }
}

/// `stage.kernel.metric`: at least three non-empty segments of
/// `[a-z0-9_]`.
fn valid_metric_name(name: &str) -> bool {
    let parts: Vec<&str> = name.split('.').collect();
    parts.len() >= 3
        && parts.iter().all(|p| {
            !p.is_empty()
                && p.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}

/// Rule 7b: no `Instant::now()` outside `crates/obs` / the shims.
fn check_no_raw_instant(path: &Path, findings: &mut Vec<Finding>) {
    // Assembled at compile time so this scanner never flags itself.
    const INSTANT_NEEDLE: &str = concat!("Instant::", "now(");
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break; // Test modules sit at the bottom of each file.
        }
        if allowed(line, "raw-instant") {
            continue;
        }
        if code_part(line).contains(INSTANT_NEEDLE) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: i + 1,
                rule: "raw-instant",
                message: format!(
                    "`{INSTANT_NEEDLE}...)` outside crates/obs bypasses the recorder \
                     epoch; use catapult_obs::now()/Stopwatch or a span, or \
                     annotate `// xtask-allow: raw-instant`"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_eq_detection() {
        assert!(has_float_eq("if x == 0.0 {"));
        assert!(has_float_eq("if 1.5 != y {"));
        assert!(has_float_eq("a == 2.5f64"));
        assert!(!has_float_eq("if x <= 0.0 {"));
        assert!(!has_float_eq("if x >= 1.0 {"));
        assert!(!has_float_eq("if n == 0 {"));
        assert!(!has_float_eq("Some(x) => 0.0,"));
        assert!(!has_float_eq("let y = x * 2.0;"));
    }

    #[test]
    fn float_literal_tokens() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("12.5f64"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("x0"));
        assert!(!is_float_literal("v.len"));
    }

    #[test]
    fn swallowed_kernel_call_detection() {
        // Free-function calls to swallowing wrappers are findings.
        assert_eq!(
            swallowed_kernel_call("if contains(&g, &p) {"),
            Some("contains(")
        );
        assert_eq!(
            swallowed_kernel_call("let ok = iso::are_isomorphic(a, b);"),
            Some("are_isomorphic(")
        );
        assert_eq!(
            swallowed_kernel_call(".filter(|g| contains(g, p))"),
            Some("contains(")
        );
        // `_tagged` variants and other suffixed names consume the tag.
        assert_eq!(swallowed_kernel_call("contains_tagged(&g, &p, &b)"), None);
        assert_eq!(
            swallowed_kernel_call("mccs_similarity_tagged(a, b, &s)"),
            None
        );
        // Different functions sharing the suffix are not kernels.
        assert_eq!(swallowed_kernel_call("brute_force_contains(&g, &p)"), None);
        // Method calls are collection/range membership, not kernels.
        assert_eq!(swallowed_kernel_call("set.contains(&x)"), None);
        // Definitions of unrelated same-named items are not call sites.
        assert_eq!(
            swallowed_kernel_call("pub fn contains(&self, id: u32) -> bool {"),
            None
        );
        assert_eq!(swallowed_kernel_call("(3..=8).contains(&n)"), None);
        // Field access has no call paren.
        assert_eq!(swallowed_kernel_call("out.embeddings > 0"), None);
    }

    #[test]
    fn metric_name_convention() {
        assert!(valid_metric_name("mining.iso.calls"));
        assert!(valid_metric_name("scoring.greedy.iterations"));
        assert!(valid_metric_name("eval.workload.steps"));
        assert!(valid_metric_name("mining.iso.probes_per_call"));
        assert!(!valid_metric_name("mining"));
        assert!(!valid_metric_name("mining.calls"));
        assert!(!valid_metric_name("Mining.Iso.Calls"));
        assert!(!valid_metric_name("mining..calls"));
        assert!(!valid_metric_name("mining.iso."));
    }

    #[test]
    fn allow_marker_matches_rule() {
        assert!(allowed(
            "let x = a == 0.0; // xtask-allow: float-eq",
            "float-eq"
        ));
        assert!(!allowed(
            "let x = a == 0.0; // xtask-allow: float-eq",
            "doc-coverage"
        ));
        assert!(!allowed("let x = a == 0.0;", "float-eq"));
    }
}
