// Lint policy: see [workspace.lints] in the root Cargo.toml.
// Unit tests are allowed the ergonomic panicking shortcuts the binary
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Workspace automation. `cargo xtask lint` drives the token-level
//! analyzer in `crates/catalint` (see DESIGN.md §12):
//!
//! ```text
//! cargo xtask lint                      # human-readable report
//! cargo xtask lint --json report.json   # also write the JSON artifact
//! cargo xtask lint --rule hash-iter-order,float-eq --rule budget-threading
//! cargo xtask lint --callgraph cg.json  # export the workspace call graph
//! cargo xtask lint --callgraph-dot cg.dot
//! cargo xtask lint --update-baseline    # regenerate catalint.baseline.json
//! ```
//!
//! `cargo xtask bench-diff` is the perf-regression gate over the
//! `BENCH_*.json` manifests (see `bench_diff` and DESIGN.md §16):
//!
//! ```text
//! cargo xtask bench-diff OLD.json NEW.json
//! cargo xtask bench-diff --tolerance 50 OLD.json NEW.json
//! cargo xtask bench-diff --allow-cross-host BENCH_kernels.json new.json
//! ```
//!
//! Exit codes (both subcommands): `0` clean (or only allowed/baselined
//! findings), `1` active findings / perf regressions, `2` usage or I/O
//! errors. The lint baseline grandfathers findings by fingerprint — see
//! `crates/catalint/src/baseline.rs` for the matching semantics and
//! v1→v2 migration.

mod bench_diff;

use catalint::baseline::Baseline;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Name of the checked-in grandfather file at the workspace root.
const BASELINE_FILE: &str = "catalint.baseline.json";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("lint") => match parse_lint_args(&argv[1..]) {
            Ok(opts) => lint(&opts),
            Err(msg) => {
                eprintln!("xtask lint: {msg}");
                eprintln!("{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("bench-diff") => match parse_bench_diff_args(&argv[1..]) {
            Ok((old, new, opts)) => run_bench_diff(&old, &new, &opts),
            Err(msg) => {
                eprintln!("xtask bench-diff: {msg}");
                eprintln!("{USAGE}");
                ExitCode::from(2)
            }
        },
        other => {
            eprintln!("got {:?}\n{USAGE}", other.unwrap_or("<nothing>"));
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--json PATH] [--rule NAME[,NAME]...]... \
[--callgraph PATH] [--callgraph-dot PATH] [--taint-graph PATH] [--taint-graph-dot PATH] \
[--timing] [--time-budget-ms N] [--update-baseline]
       cargo xtask bench-diff [--tolerance PCT] [--allow-cross-host] \
[--deterministic-only] OLD.json NEW.json";

fn parse_bench_diff_args(
    args: &[String],
) -> Result<(PathBuf, PathBuf, bench_diff::DiffOpts), String> {
    let mut opts = bench_diff::DiffOpts::default();
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let pct = it.next().ok_or("--tolerance requires a PCT argument")?;
                opts.tolerance_pct = pct
                    .parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && *p >= 0.0)
                    .ok_or(format!("--tolerance got a bad percentage `{pct}`"))?;
            }
            "--allow-cross-host" => opts.allow_cross_host = true,
            "--deterministic-only" => opts.deterministic_only = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`"));
            }
            path => positional.push(PathBuf::from(path)),
        }
    }
    match <[PathBuf; 2]>::try_from(positional) {
        Ok([old, new]) => Ok((old, new, opts)),
        Err(got) => Err(format!(
            "expected exactly 2 manifest paths (OLD.json NEW.json), got {}",
            got.len()
        )),
    }
}

fn run_bench_diff(old: &Path, new: &Path, opts: &bench_diff::DiffOpts) -> ExitCode {
    let read = |path: &Path| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let (old_text, new_text) = match (read(old), read(new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(msg), _) | (_, Err(msg)) => {
            eprintln!("xtask bench-diff: {msg}");
            return ExitCode::from(2);
        }
    };
    match bench_diff::diff(&old_text, &new_text, opts) {
        Ok(report) => {
            for line in &report.lines {
                println!("{line}");
            }
            if report.regressions > 0 {
                eprintln!(
                    "xtask bench-diff: {} regression{} ({} vs {})",
                    report.regressions,
                    if report.regressions == 1 { "" } else { "s" },
                    old.display(),
                    new.display(),
                );
                ExitCode::FAILURE
            } else {
                println!(
                    "xtask bench-diff: ok ({} vs {})",
                    old.display(),
                    new.display()
                );
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("xtask bench-diff: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Parsed `lint` subcommand options.
#[derive(Debug, Default, PartialEq, Eq)]
struct LintOpts {
    /// Write the JSON report here.
    json: Option<PathBuf>,
    /// Run only these rules (empty → all).
    rules: Vec<String>,
    /// Write the workspace call graph as JSON here.
    callgraph: Option<PathBuf>,
    /// Write the workspace call graph as Graphviz DOT here.
    callgraph_dot: Option<PathBuf>,
    /// Write the nondeterminism taint graph as JSON here.
    taint_graph: Option<PathBuf>,
    /// Write the nondeterminism taint graph as Graphviz DOT here.
    taint_graph_dot: Option<PathBuf>,
    /// Print a per-rule wall-clock breakdown after the report.
    timing: bool,
    /// Fail (exit 1) when the timed rules exceed this budget. Implies
    /// `--timing`.
    time_budget_ms: Option<u64>,
    /// Regenerate the baseline from current findings instead of checking.
    update_baseline: bool,
}

fn parse_lint_args(args: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let path = it.next().ok_or("--json requires a PATH argument")?;
                opts.json = Some(PathBuf::from(path));
            }
            "--rule" => {
                let names = it.next().ok_or("--rule requires a NAME argument")?;
                for name in names.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        return Err(format!("--rule got an empty name in `{names}`"));
                    }
                    opts.rules.push(name.to_string());
                }
            }
            "--callgraph" => {
                let path = it.next().ok_or("--callgraph requires a PATH argument")?;
                opts.callgraph = Some(PathBuf::from(path));
            }
            "--callgraph-dot" => {
                let path = it
                    .next()
                    .ok_or("--callgraph-dot requires a PATH argument")?;
                opts.callgraph_dot = Some(PathBuf::from(path));
            }
            "--taint-graph" => {
                let path = it.next().ok_or("--taint-graph requires a PATH argument")?;
                opts.taint_graph = Some(PathBuf::from(path));
            }
            "--taint-graph-dot" => {
                let path = it
                    .next()
                    .ok_or("--taint-graph-dot requires a PATH argument")?;
                opts.taint_graph_dot = Some(PathBuf::from(path));
            }
            "--timing" => opts.timing = true,
            "--time-budget-ms" => {
                let ms = it.next().ok_or("--time-budget-ms requires a number")?;
                opts.time_budget_ms = Some(
                    ms.parse::<u64>()
                        .map_err(|_| format!("--time-budget-ms got a bad number `{ms}`"))?,
                );
            }
            "--update-baseline" => opts.update_baseline = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.update_baseline && !opts.rules.is_empty() {
        return Err(
            "--update-baseline cannot be combined with --rule (a partial run \
                    would drop the other rules' baseline entries)"
                .to_string(),
        );
    }
    Ok(opts)
}

fn lint(opts: &LintOpts) -> ExitCode {
    let root = workspace_root();
    let enabled = match catalint::enabled_rules(&opts.rules) {
        Ok(on) => on,
        Err(msg) => {
            eprintln!("xtask lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let timing = opts.timing || opts.time_budget_ms.is_some();
    let analysis = match catalint::analyze_timed(&root, &enabled, timing) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("xtask lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };
    let catalint::Analysis {
        mut report,
        workspace,
        timings,
    } = analysis;

    if let Some(path) = &opts.callgraph {
        let text = workspace.callgraph_json().render();
        if let Err(err) = std::fs::write(path, text + "\n") {
            eprintln!("xtask lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.callgraph_dot {
        if let Err(err) = std::fs::write(path, workspace.callgraph_dot()) {
            eprintln!("xtask lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if opts.taint_graph.is_some() || opts.taint_graph_dot.is_some() {
        let graph = catalint::taint::TaintGraph::compute(&workspace);
        if let Some(path) = &opts.taint_graph {
            let text = graph.to_json(&workspace).render();
            if let Err(err) = std::fs::write(path, text + "\n") {
                eprintln!("xtask lint: cannot write {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
        if let Some(path) = &opts.taint_graph_dot {
            if let Err(err) = std::fs::write(path, graph.to_dot(&workspace)) {
                eprintln!("xtask lint: cannot write {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let baseline_path = root.join(BASELINE_FILE);
    if opts.update_baseline {
        // A missing or unreadable previous ledger (including schema-v1
        // files mid-migration) diffs against empty: everything current
        // reads as added, which is exactly what the rewrite does.
        let old = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|text| Baseline::parse(&text).ok())
            .unwrap_or_default();
        let baseline = Baseline::from_report(&report);
        let text = baseline.to_json().render();
        if let Err(err) = std::fs::write(&baseline_path, text + "\n") {
            eprintln!(
                "xtask lint: cannot write {}: {err}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "xtask lint: wrote {} ({} grandfathered entr{}; {})",
            baseline_path.display(),
            baseline.len(),
            if baseline.len() == 1 { "y" } else { "ies" },
            Baseline::diff(&old, &baseline).summary(),
        );
        return ExitCode::SUCCESS;
    }

    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(baseline) => baseline.apply(&mut report),
            Err(msg) => {
                eprintln!("xtask lint: malformed {BASELINE_FILE}: {msg}");
                return ExitCode::from(2);
            }
        },
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
        Err(err) => {
            eprintln!("xtask lint: cannot read {BASELINE_FILE}: {err}");
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.json {
        let text = report.to_json().render();
        if let Err(err) = std::fs::write(path, text + "\n") {
            eprintln!("xtask lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    let rendered = report.render_human();
    let failing = report.active().next().is_some();
    if failing {
        eprint!("{rendered}");
    } else {
        print!("{rendered}");
    }

    let mut over_budget = false;
    if timing {
        let total: std::time::Duration = timings.iter().map(|(_, d)| *d).sum();
        println!("catalint timing ({} timed rule(s)):", timings.len());
        for (rule, dur) in &timings {
            println!("    {:<24} {:>9.3}ms", rule, dur.as_secs_f64() * 1e3);
        }
        println!("    {:<24} {:>9.3}ms", "total", total.as_secs_f64() * 1e3);
        if let Some(budget) = opts.time_budget_ms {
            let total_ms = total.as_millis();
            if total_ms > u128::from(budget) {
                eprintln!("xtask lint: time budget exceeded: {total_ms}ms > {budget}ms");
                over_budget = true;
            } else {
                println!("xtask lint: within time budget ({total_ms}ms <= {budget}ms)");
            }
        }
    }

    if failing || over_budget {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Locate the workspace root: walk up from CWD until `Cargo.toml` with a
/// `[workspace]` table is found. `cargo xtask` runs from the root, but a
/// direct `cargo run -p xtask` from a crate directory also works.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Used by `lint` to locate the baseline next to the root manifest; kept
/// as a free function so the path logic stays testable.
#[allow(dead_code)]
fn baseline_path(root: &Path) -> PathBuf {
    root.join(BASELINE_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn parses_flags_in_any_order() {
        let opts = parse_lint_args(&s(&[
            "--rule",
            "float-eq",
            "--json",
            "out.json",
            "--rule",
            "lock-order",
            "--callgraph",
            "cg.json",
            "--callgraph-dot",
            "cg.dot",
        ]))
        .expect("parses");
        assert_eq!(opts.json.as_deref(), Some(Path::new("out.json")));
        assert_eq!(opts.rules, s(&["float-eq", "lock-order"]));
        assert_eq!(opts.callgraph.as_deref(), Some(Path::new("cg.json")));
        assert_eq!(opts.callgraph_dot.as_deref(), Some(Path::new("cg.dot")));
        assert!(!opts.update_baseline);
    }

    #[test]
    fn rule_lists_split_on_commas() {
        let opts = parse_lint_args(&s(&[
            "--rule",
            "float-eq, lock-order",
            "--rule",
            "budget-threading",
        ]))
        .expect("parses");
        assert_eq!(
            opts.rules,
            s(&["float-eq", "lock-order", "budget-threading"])
        );
        assert!(parse_lint_args(&s(&["--rule", "float-eq,,lock-order"])).is_err());
        assert!(parse_lint_args(&s(&["--rule", ","])).is_err());
    }

    #[test]
    fn rejects_missing_values_and_unknown_flags() {
        assert!(parse_lint_args(&s(&["--json"])).is_err());
        assert!(parse_lint_args(&s(&["--rule"])).is_err());
        assert!(parse_lint_args(&s(&["--callgraph"])).is_err());
        assert!(parse_lint_args(&s(&["--callgraph-dot"])).is_err());
        assert!(parse_lint_args(&s(&["--taint-graph"])).is_err());
        assert!(parse_lint_args(&s(&["--taint-graph-dot"])).is_err());
        assert!(parse_lint_args(&s(&["--time-budget-ms"])).is_err());
        assert!(parse_lint_args(&s(&["--time-budget-ms", "lots"])).is_err());
        assert!(parse_lint_args(&s(&["--time-budget-ms", "-5"])).is_err());
        assert!(parse_lint_args(&s(&["--frobnicate"])).is_err());
    }

    #[test]
    fn taint_and_timing_flags_parse() {
        let opts = parse_lint_args(&s(&[
            "--taint-graph",
            "tg.json",
            "--taint-graph-dot",
            "tg.dot",
            "--timing",
            "--time-budget-ms",
            "60000",
        ]))
        .expect("parses");
        assert_eq!(opts.taint_graph.as_deref(), Some(Path::new("tg.json")));
        assert_eq!(opts.taint_graph_dot.as_deref(), Some(Path::new("tg.dot")));
        assert!(opts.timing);
        assert_eq!(opts.time_budget_ms, Some(60_000));

        let bare = parse_lint_args(&[]).expect("parses");
        assert!(!bare.timing);
        assert_eq!(bare.time_budget_ms, None);
    }

    #[test]
    fn update_baseline_excludes_rule_filter() {
        assert!(parse_lint_args(&s(&["--update-baseline"])).is_ok());
        assert!(parse_lint_args(&s(&["--update-baseline", "--rule", "float-eq"])).is_err());
    }

    #[test]
    fn bench_diff_args_parse() {
        let (old, new, opts) = parse_bench_diff_args(&s(&[
            "--tolerance",
            "55.5",
            "old.json",
            "--allow-cross-host",
            "new.json",
        ]))
        .expect("parses");
        assert_eq!(old, Path::new("old.json"));
        assert_eq!(new, Path::new("new.json"));
        assert!((opts.tolerance_pct - 55.5).abs() < 1e-9);
        assert!(opts.allow_cross_host);

        let (_, _, opts) = parse_bench_diff_args(&s(&["a.json", "b.json"])).expect("parses");
        assert!((opts.tolerance_pct - bench_diff::DEFAULT_TOLERANCE_PCT).abs() < 1e-9);
        assert!(!opts.allow_cross_host);
    }

    #[test]
    fn bench_diff_args_reject_bad_input() {
        assert!(parse_bench_diff_args(&s(&["only-one.json"])).is_err());
        assert!(parse_bench_diff_args(&s(&["a", "b", "c"])).is_err());
        assert!(parse_bench_diff_args(&s(&["--tolerance", "nan", "a", "b"])).is_err());
        assert!(parse_bench_diff_args(&s(&["--tolerance", "-5", "a", "b"])).is_err());
        assert!(parse_bench_diff_args(&s(&["--frobnicate", "a", "b"])).is_err());
        assert!(parse_bench_diff_args(&s(&["--tolerance"])).is_err());
    }
}
