//! The stage checkpoint store: atomic writes, fingerprint validation,
//! bounded retry, and the resume/overwrite policy for the checkpoint
//! directory.
//!
//! ## File format
//!
//! Every `<stage>.ckpt` file is laid out as
//!
//! ```text
//! magic            8 bytes   b"CATCKPT1"
//! schema_version   u32 le    SCHEMA_VERSION at write time
//! stage            str       length-prefixed stage name
//! dataset_hash     u64 le    \
//! config_hash      u64 le    | the run Fingerprint
//! eta_min          u64 le    |
//! eta_max          u64 le    |
//! gamma            u64 le    /
//! seq              u64 le    intra-stage sequence (chunked stages)
//! payload          bytes     length-prefixed stage payload
//! checksum         u64 le    FNV-1a 64 over every prior byte
//! ```
//!
//! and is produced by writing the whole image to a hidden temp file in
//! the same directory, then `rename`-ing over the final path. A crash
//! at any instant therefore leaves either the old complete file or the
//! new complete file at `<stage>.ckpt` — never a prefix.
//!
//! ## Load policy
//!
//! * **Absent** file → `Ok(None)`: compute the stage from scratch.
//! * **Corrupt** file (bad magic, short read, checksum mismatch,
//!   malformed payload framing) → warn on stderr, bump
//!   `ckpt.store.reject`, delete the carcass, `Ok(None)`. Corruption is
//!   what crashes produce; recomputing is always safe and the result is
//!   identical by the determinism invariant.
//! * **Foreign** file (schema version or any fingerprint field differs)
//!   → hard error naming the first mismatched field. This is operator
//!   error — resuming someone else's run would silently produce wrong
//!   output, so the run must not proceed.

use crate::{fnv1a, wire, Fnv64};
use catapult_obs::Recorder;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Version of the checkpoint layout. Bump on any field add/remove/
/// reorder in the header or in any stage payload encoding.
///
/// v2: the fine-clustering payload gained a persisted similarity-cache
/// section (class-pair memoization entries).
pub const SCHEMA_VERSION: u32 = 2;

/// Leading magic of every checkpoint file.
const MAGIC: &[u8; 8] = b"CATCKPT1";

/// File-name suffix of a stage checkpoint.
const CKPT_SUFFIX: &str = ".ckpt";

/// Identity of a run, embedded in every checkpoint it writes.
///
/// Two runs share a fingerprint iff they would compute identical
/// results: same input database, same pipeline configuration, same
/// pattern budget. Thread count is deliberately **excluded** — results
/// are byte-identical across pool sizes, so a run interrupted at
/// 8 threads may resume at 1 (the resume-equivalence test exercises
/// exactly this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// FNV-1a over the input database (labels + edges of every graph,
    /// in order).
    pub dataset_hash: u64,
    /// FNV-1a over the wire encoding of the pipeline configuration.
    pub config_hash: u64,
    /// Pattern budget: minimum pattern size.
    pub eta_min: u64,
    /// Pattern budget: maximum pattern size.
    pub eta_max: u64,
    /// Pattern budget: pattern count γ.
    pub gamma: u64,
}

impl Fingerprint {
    /// The fingerprint fields in wire order, paired with the names used
    /// in mismatch diagnostics.
    fn fields(&self) -> [(&'static str, u64); 5] {
        [
            ("dataset_hash", self.dataset_hash),
            ("config_hash", self.config_hash),
            ("budget.eta_min", self.eta_min),
            ("budget.eta_max", self.eta_max),
            ("budget.gamma", self.gamma),
        ]
    }
}

/// Bounded retry for transient checkpoint I/O failures.
///
/// A failed write is retried up to `attempts` total tries, sleeping
/// `base_backoff * 2^(try - 1)` between tries. Checkpoints are an
/// availability feature — but a write that keeps failing is a real
/// error (disk full, permissions) and must surface, so the bound is
/// small.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total write attempts (≥ 1; 0 is treated as 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(5),
        }
    }
}

/// How a run uses its checkpoint directory.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding the `<stage>.ckpt` files.
    pub dir: PathBuf,
    /// Load and reuse compatible checkpoints found in `dir`. Off, an
    /// existing checkpointed run in `dir` is refused unless `force`.
    pub resume: bool,
    /// Overwrite (wipe) an existing checkpointed run instead of
    /// refusing it.
    pub force: bool,
    /// Similarity entries computed between intra-stage checkpoint
    /// flushes in the chunked fine-clustering stage.
    pub chunk_pairs: usize,
    /// Retry policy for transient write failures.
    pub retry: RetryPolicy,
}

impl CheckpointConfig {
    /// Config with default policy: fresh run, no force, default
    /// chunking and retry.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            resume: false,
            force: false,
            chunk_pairs: 4096,
            retry: RetryPolicy::default(),
        }
    }
}

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem error (after retries, for writes).
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The checkpoint directory already holds a previous run's
    /// checkpoints and neither `--resume` nor `--force` was given.
    WouldOverwrite {
        /// The refused directory.
        dir: String,
    },
    /// The checkpoint was written by a different checkpoint-layout
    /// version.
    SchemaMismatch {
        /// The offending file.
        path: String,
        /// The version found in the file.
        found: u32,
    },
    /// The checkpoint belongs to a different run: `field` is the first
    /// fingerprint field that differs.
    FingerprintMismatch {
        /// The offending file.
        path: String,
        /// Name of the first mismatched fingerprint field.
        field: &'static str,
        /// The value stored in the checkpoint.
        found: u64,
        /// The value this run expects.
        expected: u64,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, source } => write!(f, "{path}: checkpoint I/O error: {source}"),
            CkptError::WouldOverwrite { dir } => {
                let reason = "checkpoint directory already contains stage checkpoints \
                              (pass --resume to continue that run)";
                write!(
                    f,
                    "{}",
                    catapult_obs::manifest::overwrite_refusal(dir, reason)
                )
            }
            CkptError::SchemaMismatch { path, found } => write!(
                f,
                "{path}: checkpoint has schema version {found}, this build writes \
                 {SCHEMA_VERSION}; delete the checkpoint directory (or rerun with \
                 --force) to start over"
            ),
            CkptError::FingerprintMismatch {
                path,
                field,
                found,
                expected,
            } => write!(
                f,
                "{path}: checkpoint fingerprint mismatch in field `{field}`: checkpoint \
                 has {found:#x}, this run expects {expected:#x} — the checkpoint belongs \
                 to a different dataset/config/budget; point --checkpoint-dir elsewhere \
                 or rerun with --force to start over"
            ),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Handle on an open checkpoint directory, bound to one run's
/// [`Fingerprint`].
#[derive(Clone, Debug)]
pub struct StageStore {
    dir: PathBuf,
    fp: Fingerprint,
    resume: bool,
    chunk_pairs: usize,
    retry: RetryPolicy,
    recorder: Recorder,
}

impl StageStore {
    /// Open (creating if needed) the checkpoint directory for a run
    /// with fingerprint `fp`.
    ///
    /// If the directory already holds `*.ckpt` files and the config
    /// neither resumes nor forces, the open is refused — a silent
    /// overwrite would destroy the very state a crashed run needs. With
    /// `force`, prior checkpoints are wiped and the run starts fresh.
    pub fn open(
        cfg: &CheckpointConfig,
        fp: Fingerprint,
        recorder: Recorder,
    ) -> Result<StageStore, CkptError> {
        std::fs::create_dir_all(&cfg.dir).map_err(|source| CkptError::Io {
            path: cfg.dir.display().to_string(),
            source,
        })?;
        let existing = existing_checkpoints(&cfg.dir)?;
        if !existing.is_empty() && !cfg.resume {
            if !cfg.force {
                return Err(CkptError::WouldOverwrite {
                    dir: cfg.dir.display().to_string(),
                });
            }
            for path in existing {
                std::fs::remove_file(&path).map_err(|source| CkptError::Io {
                    path: path.display().to_string(),
                    source,
                })?;
            }
        }
        Ok(StageStore {
            dir: cfg.dir.clone(),
            fp,
            resume: cfg.resume,
            chunk_pairs: cfg.chunk_pairs.max(1),
            retry: cfg.retry,
            recorder,
        })
    }

    /// The run fingerprint this store stamps on every checkpoint.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    /// Similarity entries per intra-stage checkpoint flush.
    #[must_use]
    pub fn chunk_pairs(&self) -> usize {
        self.chunk_pairs
    }

    /// Final path of `stage`'s checkpoint file.
    #[must_use]
    pub fn stage_path(&self, stage: &str) -> PathBuf {
        self.dir.join(format!("{stage}{CKPT_SUFFIX}"))
    }

    /// Atomically write `stage`'s checkpoint, replacing any previous
    /// one. `seq` is the intra-stage sequence number (0 for
    /// whole-stage checkpoints; monotonically increasing for chunked
    /// flushes, so a torn sequence is detectable in tests).
    pub fn save(&self, stage: &str, seq: u64, payload: &[u8]) -> Result<(), CkptError> {
        let _span = self.recorder.span("ckpt_write");
        let image = encode_file(stage, self.fp, seq, payload);
        let path = self.stage_path(stage);
        // Hidden temp name: never matches `existing_checkpoints`, so a
        // crash mid-write cannot trip the overwrite guard on restart.
        let tmp = self.dir.join(format!(".{stage}{CKPT_SUFFIX}.tmp"));
        let mut backoff = self.retry.base_backoff;
        let attempts = self.retry.attempts.max(1);
        for attempt in 1..=attempts {
            match write_once(&tmp, &path, &image) {
                Ok(()) => {
                    self.recorder.counter("ckpt.store.write").incr();
                    catapult_obs::flight::event(
                        "flight.ckpt.write",
                        catapult_obs::flight::interned(stage),
                        seq,
                    );
                    return Ok(());
                }
                Err(_) if attempt < attempts => {
                    self.recorder.counter("ckpt.store.retry").incr();
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(source) => {
                    return Err(CkptError::Io {
                        path: path.display().to_string(),
                        source,
                    });
                }
            }
        }
        // The loop always returns on its last attempt.
        unreachable!("retry loop exited without returning")
    }

    /// Load `stage`'s checkpoint, if one exists and this store is in
    /// resume mode.
    ///
    /// Returns `Ok(None)` when the stage must be (re)computed: store
    /// not resuming, file absent, or file corrupt (warned, counted in
    /// `ckpt.store.reject`, and deleted). Returns an error only for
    /// real I/O failures and for schema/fingerprint mismatches — those
    /// mean the checkpoint is *valid but foreign*, and recomputing
    /// would silently clobber another run's state.
    pub fn load(&self, stage: &str) -> Result<Option<(u64, Vec<u8>)>, CkptError> {
        if !self.resume {
            return Ok(None);
        }
        let _span = self.recorder.span("ckpt_load");
        let path = self.stage_path(stage);
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(source) => {
                return Err(CkptError::Io {
                    path: path.display().to_string(),
                    source,
                });
            }
        };
        match decode_file(&path, &raw, stage, self.fp) {
            Ok((seq, payload)) => {
                self.recorder.counter("ckpt.store.load").incr();
                catapult_obs::flight::event(
                    "flight.ckpt.load",
                    catapult_obs::flight::interned(stage),
                    seq,
                );
                Ok(Some((seq, payload)))
            }
            Err(Verdict::Corrupt(detail)) => {
                self.recorder.counter("ckpt.store.reject").incr();
                catapult_obs::warn(format!(
                    "discarding corrupt checkpoint {}: {detail}; recomputing stage `{stage}`",
                    path.display()
                ));
                // Best-effort removal; a fresh save overwrites it anyway.
                std::fs::remove_file(&path).ok();
                Ok(None)
            }
            Err(Verdict::Foreign(e)) => {
                self.recorder.counter("ckpt.store.reject").incr();
                Err(e)
            }
        }
    }

    /// Delete `stage`'s checkpoint if present (used when a later stage
    /// invalidates an earlier partial one).
    pub fn discard(&self, stage: &str) -> Result<(), CkptError> {
        let path = self.stage_path(stage);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(source) => Err(CkptError::Io {
                path: path.display().to_string(),
                source,
            }),
        }
    }
}

/// `*.ckpt` files currently in `dir` (sorted for determinism).
fn existing_checkpoints(dir: &Path) -> Result<Vec<PathBuf>, CkptError> {
    let entries = std::fs::read_dir(dir).map_err(|source| CkptError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| CkptError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(CKPT_SUFFIX) && !name.starts_with('.') {
            found.push(entry.path());
        }
    }
    found.sort();
    Ok(found)
}

/// One atomic write attempt: full image to `tmp`, rename over `path`.
fn write_once(tmp: &Path, path: &Path, image: &[u8]) -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    crate::fault::intercept_write(path, image)?;
    std::fs::write(tmp, image)?;
    std::fs::rename(tmp, path)
}

/// Serialize a complete checkpoint file image.
fn encode_file(stage: &str, fp: Fingerprint, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut enc = wire::Enc::new();
    enc.raw(MAGIC);
    enc.u32(SCHEMA_VERSION);
    enc.str(stage);
    for (_, value) in fp.fields() {
        enc.u64(value);
    }
    enc.u64(seq);
    enc.bytes(payload);
    let body = enc.into_bytes();
    let checksum = fnv1a(&body);
    let mut out = body;
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Why a parsed checkpoint cannot be used.
enum Verdict {
    /// Damaged bytes — recompute.
    Corrupt(String),
    /// Valid bytes from a different run/version — hard error.
    Foreign(CkptError),
}

/// Parse and validate a checkpoint file image against the expected
/// stage name and run fingerprint.
fn decode_file(
    path: &Path,
    raw: &[u8],
    stage: &str,
    expected: Fingerprint,
) -> Result<(u64, Vec<u8>), Verdict> {
    let corrupt = |detail: &str| Verdict::Corrupt(detail.to_string());
    if raw.len() < MAGIC.len() + 8 {
        return Err(corrupt("file shorter than header"));
    }
    let (body, trailer) = raw.split_at(raw.len() - 8);
    let mut checksum = [0u8; 8];
    checksum.copy_from_slice(trailer);
    let stored = u64::from_le_bytes(checksum);
    let computed = {
        let mut h = Fnv64::new();
        h.update(body);
        h.finish()
    };
    if stored != computed {
        return Err(corrupt(&format!(
            "checksum mismatch (stored {stored:#x}, computed {computed:#x})"
        )));
    }
    let mut dec = wire::Dec::new(body);
    let magic = dec
        .raw(MAGIC.len())
        .map_err(|e| corrupt(&format!("bad header: {e}")))?;
    if magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    // Checksum has already vouched for the bytes; framing errors past
    // here mean a schema drift within the same version — treat the
    // version field as authoritative first.
    let version = dec
        .u32()
        .map_err(|e| corrupt(&format!("bad header: {e}")))?;
    if version != SCHEMA_VERSION {
        return Err(Verdict::Foreign(CkptError::SchemaMismatch {
            path: path.display().to_string(),
            found: version,
        }));
    }
    let file_stage = dec
        .str()
        .map_err(|e| corrupt(&format!("bad stage field: {e}")))?;
    if file_stage != stage {
        return Err(corrupt(&format!(
            "stage name `{file_stage}` does not match file name (expected `{stage}`)"
        )));
    }
    let mut found = [0u64; 5];
    for slot in &mut found {
        *slot = dec
            .u64()
            .map_err(|e| corrupt(&format!("bad fingerprint field: {e}")))?;
    }
    for ((field, want), got) in expected.fields().into_iter().zip(found) {
        if got != want {
            return Err(Verdict::Foreign(CkptError::FingerprintMismatch {
                path: path.display().to_string(),
                field,
                found: got,
                expected: want,
            }));
        }
    }
    let seq = dec.u64().map_err(|e| corrupt(&format!("bad seq: {e}")))?;
    let payload = dec
        .bytes()
        .map_err(|e| corrupt(&format!("bad payload: {e}")))?;
    dec.finish()
        .map_err(|e| corrupt(&format!("trailing bytes: {e}")))?;
    Ok((seq, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Fingerprint {
        Fingerprint {
            dataset_hash: 0x1111,
            config_hash: 0x2222,
            eta_min: 3,
            eta_max: 8,
            gamma: 30,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("catapult-ckpt-test-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn cfg(dir: &Path) -> CheckpointConfig {
        let mut c = CheckpointConfig::new(dir);
        c.retry.base_backoff = Duration::from_millis(0);
        c
    }

    fn open(dir: &Path, resume: bool) -> StageStore {
        let mut c = cfg(dir);
        c.resume = resume;
        StageStore::open(&c, fp(), Recorder::disabled()).unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let store = open(&dir, false);
        store.save("mining", 7, b"hello checkpoints").unwrap();
        // Writer isn't resuming, so it never reads its own files back.
        assert_eq!(store.load("mining").unwrap(), None);
        let resumed = open(&dir, true);
        let (seq, payload) = resumed.load("mining").unwrap().unwrap();
        assert_eq!(seq, 7);
        assert_eq!(payload, b"hello checkpoints");
        assert_eq!(resumed.load("csg").unwrap(), None, "absent stage is None");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_guard_refuses_then_force_wipes() {
        let dir = tmp_dir("guard");
        let store = open(&dir, false);
        store.save("mining", 0, b"x").unwrap();
        // Fresh run into a populated dir: refused, message carries the
        // shared --force suffix.
        let err = StageStore::open(&cfg(&dir), fp(), Recorder::disabled()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.ends_with("; pass --force to overwrite"),
            "unexpected message: {msg}"
        );
        assert!(matches!(err, CkptError::WouldOverwrite { .. }));
        // Force wipes and proceeds.
        let mut forced = cfg(&dir);
        forced.force = true;
        StageStore::open(&forced, fp(), Recorder::disabled()).unwrap();
        assert!(!dir.join("mining.ckpt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoints_are_discarded_not_trusted() {
        for (tag, mutate) in [
            (
                "truncate",
                &(|raw: &mut Vec<u8>| {
                    raw.truncate(raw.len() / 2);
                }) as &dyn Fn(&mut Vec<u8>),
            ),
            ("bitflip", &|raw: &mut Vec<u8>| {
                let mid = raw.len() / 2;
                raw[mid] ^= 0x40;
            }),
            ("torn", &|raw: &mut Vec<u8>| {
                let keep = raw.len() / 3;
                raw.truncate(keep);
                raw.extend_from_slice(&[0xAB; 11]);
            }),
            ("empty", &|raw: &mut Vec<u8>| raw.clear()),
        ] {
            let dir = tmp_dir(&format!("corrupt-{tag}"));
            let store = open(&dir, false);
            store.save("fine", 3, b"payload bytes").unwrap();
            let path = store.stage_path("fine");
            let mut raw = std::fs::read(&path).unwrap();
            mutate(&mut raw);
            std::fs::write(&path, &raw).unwrap();

            let recorder = Recorder::enabled();
            let mut resume = cfg(&dir);
            resume.resume = true;
            let resumed = StageStore::open(&resume, fp(), recorder.clone()).unwrap();
            assert_eq!(resumed.load("fine").unwrap(), None, "case {tag}");
            assert!(!path.exists(), "case {tag}: carcass not removed");
            let snapshot = recorder.snapshot().unwrap();
            assert!(
                snapshot
                    .counters
                    .iter()
                    .any(|(n, v)| n == "ckpt.store.reject" && *v == 1),
                "case {tag}: reject counter missing"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn foreign_fingerprint_is_a_hard_error_naming_the_field() {
        type Mutator = fn(&mut Fingerprint);
        let cases: [(&'static str, Mutator); 5] = [
            ("dataset_hash", |f| f.dataset_hash ^= 1),
            ("config_hash", |f| f.config_hash ^= 1),
            ("budget.eta_min", |f| f.eta_min += 1),
            ("budget.eta_max", |f| f.eta_max += 1),
            ("budget.gamma", |f| f.gamma += 1),
        ];
        for (name, mutate) in cases {
            let dir = tmp_dir(&format!("foreign-{}", name.replace('.', "-")));
            let store = open(&dir, false);
            store.save("csg", 0, b"zzz").unwrap();
            let mut other = fp();
            mutate(&mut other);
            let mut resume = cfg(&dir);
            resume.resume = true;
            let resumed = StageStore::open(&resume, other, Recorder::disabled()).unwrap();
            let err = resumed.load("csg").unwrap_err();
            match err {
                CkptError::FingerprintMismatch { field, .. } => {
                    assert_eq!(field, name);
                }
                other => panic!("expected FingerprintMismatch, got {other:?}"),
            }
            assert!(
                err.to_string().contains(&format!("`{name}`")),
                "diagnostic must name the field: {err}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn schema_mismatch_is_a_hard_error() {
        let dir = tmp_dir("schema");
        let store = open(&dir, false);
        store.save("selection", 0, b"abc").unwrap();
        let path = store.stage_path("selection");
        let raw = std::fs::read(&path).unwrap();
        // Rewrite with a bumped version *and* a fixed-up checksum, so
        // the file is valid-but-future rather than corrupt.
        let body_len = raw.len() - 8;
        let mut body = raw[..body_len].to_vec();
        let ver_at = MAGIC.len();
        body[ver_at..ver_at + 4].copy_from_slice(&99u32.to_le_bytes());
        let sum = crate::fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &body).unwrap();

        let resumed = open(&dir, true);
        let err = resumed.load("selection").unwrap_err();
        assert!(matches!(err, CkptError::SchemaMismatch { found: 99, .. }));
        assert!(err.to_string().contains("schema version 99"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_and_load_counters_flow_to_recorder() {
        let dir = tmp_dir("counters");
        let recorder = Recorder::enabled();
        let mut c = cfg(&dir);
        c.resume = true;
        let store = StageStore::open(&c, fp(), recorder.clone()).unwrap();
        store.save("mining", 0, b"a").unwrap();
        store.save("mining", 1, b"b").unwrap();
        assert!(store.load("mining").unwrap().is_some());
        let snapshot = recorder.snapshot().unwrap();
        let get = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("ckpt.store.write"), Some(2));
        assert_eq!(get("ckpt.store.load"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn discard_removes_stage_file() {
        let dir = tmp_dir("discard");
        let store = open(&dir, false);
        store.save("fine", 0, b"x").unwrap();
        assert!(store.stage_path("fine").exists());
        store.discard("fine").unwrap();
        assert!(!store.stage_path("fine").exists());
        store.discard("fine").unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }
}
