//! Deterministic persistence fault injection (feature
//! `fault-injection`, test-only).
//!
//! Mirrors the kernel-level `catapult_graph::fault` harness at the
//! persistence layer: a process-global [`PersistFaultPlan`] targets the
//! N-th checkpoint **write attempt** and makes it misbehave in one of
//! the ways real systems do — a transient I/O error (exercising the
//! retry path), a torn or truncated file at the final path, a silent
//! bit-flip (caught by the checksum on load), or a crash immediately
//! after a completed write (the kill-between-stages case).
//!
//! Crash-style faults panic with [`CRASH_PAYLOAD`]; tests catch that
//! panic to simulate a process death in-process, then reopen the store
//! with `resume` and assert the recovery invariant: the resumed run's
//! output is byte-identical to an uninterrupted one.
//!
//! The plan is global state, so tests that install one must serialize
//! on a shared lock and [`clear`] it when done.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Panic message used by crash-style faults, so supervising tests can
/// tell an injected death from a genuine bug.
pub const CRASH_PAYLOAD: &str = "injected persistence crash (fault-injection plan)";

/// What the targeted write attempt does instead of succeeding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistFaultKind {
    /// Fail with a synthetic transient I/O error for `times`
    /// consecutive attempts starting at the target, then let the write
    /// proceed — exercises [`RetryPolicy`](crate::RetryPolicy).
    IoError {
        /// How many consecutive attempts fail.
        times: u32,
    },
    /// Leave a torn file at the final path (prefix of the image plus
    /// garbage), then crash.
    TornWrite,
    /// Leave a truncated prefix of the image at the final path, then
    /// crash.
    Truncate,
    /// Leave the full image with one bit flipped at the final path,
    /// then crash. Only the trailing checksum can catch this.
    BitFlip,
    /// Complete the write normally, then crash — a process killed
    /// between stages.
    Crash,
}

/// A single armed fault: `kind` strikes at the `at`-th (1-based)
/// checkpoint write attempt since [`install`].
#[derive(Clone, Copy, Debug)]
pub struct PersistFaultPlan {
    /// What goes wrong.
    pub kind: PersistFaultKind,
    /// 1-based write-attempt index to target.
    pub at: u64,
}

static PLAN: Mutex<Option<PersistFaultPlan>> = Mutex::new(None);
static WRITES: AtomicU64 = AtomicU64::new(0);

/// The plan lock, surviving poisoning: crash faults panic by design,
/// and a poisoned plan must not cascade into unrelated tests.
fn plan_slot() -> MutexGuard<'static, Option<PersistFaultPlan>> {
    PLAN.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arm `plan` and reset the write-attempt counter.
pub fn install(plan: PersistFaultPlan) {
    *plan_slot() = Some(plan);
    WRITES.store(0, Ordering::SeqCst);
}

/// Disarm any active plan (does not reset the counter, so a test can
/// still read how far the run got).
pub fn clear() {
    *plan_slot() = None;
}

/// Checkpoint write attempts observed since the last [`install`].
#[must_use]
pub fn writes() -> u64 {
    WRITES.load(Ordering::SeqCst)
}

/// Hook called by the store before each write attempt. Returns
/// `Ok(())` to let the real atomic write proceed, `Err` to simulate a
/// failed attempt, or — for crash-style faults — performs its own
/// damage at `final_path` and never returns.
pub(crate) fn intercept_write(final_path: &Path, image: &[u8]) -> io::Result<()> {
    let n = WRITES.fetch_add(1, Ordering::SeqCst) + 1;
    let Some(plan) = *plan_slot() else {
        return Ok(());
    };
    match plan.kind {
        PersistFaultKind::IoError { times } => {
            if n >= plan.at && n < plan.at + u64::from(times) {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient I/O failure (write attempt {n})"),
                ));
            }
            Ok(())
        }
        _ if n != plan.at => Ok(()),
        PersistFaultKind::TornWrite => {
            // A tear: some of the new bytes made it, then the tail is
            // whatever the disk had — modelled as garbage.
            let keep = image.len() / 2;
            let mut torn = image[..keep].to_vec();
            torn.extend_from_slice(&[0xEE; 13]);
            std::fs::write(final_path, &torn)?;
            crash()
        }
        PersistFaultKind::Truncate => {
            std::fs::write(final_path, &image[..image.len() / 3])?;
            crash()
        }
        PersistFaultKind::BitFlip => {
            let mut bad = image.to_vec();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x01;
            std::fs::write(final_path, &bad)?;
            crash()
        }
        PersistFaultKind::Crash => {
            // The rename completed; the process died right after.
            std::fs::write(final_path, image)?;
            crash()
        }
    }
}

/// Simulate the process death.
fn crash() -> ! {
    // Deliberate: fault injection models a process dying mid-run; the
    // panic unwinds to the supervising test's catch_unwind, standing in
    // for SIGKILL without leaving the test harness.
    #[allow(clippy::panic)]
    {
        panic!("{CRASH_PAYLOAD}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckpointConfig, CkptError, Fingerprint, StageStore};
    use catapult_obs::Recorder;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};
    use std::time::Duration;

    /// Fault plans are process-global; tests sharing them run one at a
    /// time.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn fp() -> Fingerprint {
        Fingerprint {
            dataset_hash: 1,
            config_hash: 2,
            eta_min: 3,
            eta_max: 8,
            gamma: 30,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("catapult-ckpt-fault-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn open(dir: &Path, resume: bool, recorder: Recorder) -> StageStore {
        let mut c = CheckpointConfig::new(dir);
        c.resume = resume;
        c.retry.base_backoff = Duration::from_millis(0);
        StageStore::open(&c, fp(), recorder).unwrap()
    }

    #[test]
    fn transient_io_error_is_retried_and_counted() {
        let _guard = serial();
        let dir = tmp_dir("retry");
        let recorder = Recorder::enabled();
        let store = open(&dir, false, recorder.clone());
        install(PersistFaultPlan {
            kind: PersistFaultKind::IoError { times: 2 },
            at: 1,
        });
        store.save("mining", 0, b"survives retries").unwrap();
        clear();
        let snapshot = recorder.snapshot().unwrap();
        let get = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("ckpt.store.retry"), Some(2));
        assert_eq!(get("ckpt.store.write"), Some(1));
        let resumed = open(&dir, true, Recorder::disabled());
        assert_eq!(
            resumed.load("mining").unwrap().unwrap().1,
            b"survives retries"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_io_error_exhausts_retries_and_surfaces() {
        let _guard = serial();
        let dir = tmp_dir("exhaust");
        let store = open(&dir, false, Recorder::disabled());
        install(PersistFaultPlan {
            kind: PersistFaultKind::IoError { times: 10 },
            at: 1,
        });
        let err = store.save("mining", 0, b"never lands").unwrap_err();
        clear();
        assert!(matches!(err, CkptError::Io { .. }), "got {err:?}");
        assert_eq!(writes(), 3, "default policy makes three attempts");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupting_crashes_leave_files_the_loader_rejects() {
        for kind in [
            PersistFaultKind::TornWrite,
            PersistFaultKind::Truncate,
            PersistFaultKind::BitFlip,
        ] {
            let _guard = serial();
            let dir = tmp_dir(&format!("{kind:?}"));
            let store = open(&dir, false, Recorder::disabled());
            store.save("mining", 0, b"good earlier stage").unwrap();
            install(PersistFaultPlan { kind, at: 1 });
            let death = catch_unwind(AssertUnwindSafe(|| store.save("fine", 0, b"doomed")));
            clear();
            let payload = death.unwrap_err();
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(msg, CRASH_PAYLOAD, "case {kind:?}");

            // "Restart": resume from the same directory. The damaged
            // stage is rejected and recomputed; the earlier stage loads.
            let recorder = Recorder::enabled();
            let resumed = open(&dir, true, recorder.clone());
            assert_eq!(resumed.load("fine").unwrap(), None, "case {kind:?}");
            assert_eq!(
                resumed.load("mining").unwrap().unwrap().1,
                b"good earlier stage",
                "case {kind:?}"
            );
            let snapshot = recorder.snapshot().unwrap();
            assert!(
                snapshot
                    .counters
                    .iter()
                    .any(|(n, v)| n == "ckpt.store.reject" && *v == 1),
                "case {kind:?}: reject not counted"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn crash_after_completed_write_loses_nothing() {
        let _guard = serial();
        let dir = tmp_dir("crash-after");
        let store = open(&dir, false, Recorder::disabled());
        install(PersistFaultPlan {
            kind: PersistFaultKind::Crash,
            at: 1,
        });
        let death = catch_unwind(AssertUnwindSafe(|| store.save("csg", 4, b"landed")));
        clear();
        assert!(death.is_err());
        let resumed = open(&dir, true, Recorder::disabled());
        let (seq, payload) = resumed.load("csg").unwrap().unwrap();
        assert_eq!((seq, payload.as_slice()), (4, b"landed".as_slice()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
