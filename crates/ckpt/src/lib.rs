//! Crash-safe stage checkpoints for resumable CATAPULT pipeline runs.
//!
//! Selection over a production-scale database is a long, restartable
//! batch job (§6 measures clustering alone in tens of seconds and the
//! large-network front-end of arXiv:2107.09952 will grow it by orders of
//! magnitude), yet historically nothing was persisted until the final
//! `SelectionResult` — a process death discarded the entire run. This
//! crate is the persistence layer that makes restarts cheap:
//!
//! * [`StageStore`] — one checkpoint file per pipeline boundary
//!   (`mining` → `coarse` → `fine` → `clustering` → `csg` →
//!   `selection`), written **atomically** (temp file + rename on the
//!   same directory) so a crash can never leave a half-written file at
//!   the final path.
//! * Every file is **schema-versioned**, carries the run's
//!   [`Fingerprint`] (input-dataset hash + config hash + pattern
//!   budget), and ends in an FNV-1a checksum over the entire contents.
//!   A stale or foreign checkpoint is rejected with a diagnostic naming
//!   the first mismatched fingerprint field; a corrupt one (torn write,
//!   truncation, bit-flip) fails its checksum and is recomputed — never
//!   silently reused.
//! * Transient I/O failures during a write are retried with bounded
//!   exponential backoff ([`RetryPolicy`]).
//! * Checkpoint traffic is observable: each save/load runs under a
//!   recorder span and bumps the `ckpt.store.{write,load,reject,retry}`
//!   counters that land in the run manifest.
//! * [`wire`] — the minimal length-prefixed little-endian encoding the
//!   payloads use; byte-identical round-trips are a tested invariant
//!   (the resume-equals-uninterrupted property depends on it).
//! * [`fault`] (behind the `fault-injection` feature) — deterministic
//!   persistence faults: the K-th checkpoint write can be made to tear,
//!   truncate, bit-flip, fail transiently, or crash the run right after
//!   completing, so every recovery path is testable in-process.
// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod wire;

mod store;

pub use store::{
    CheckpointConfig, CkptError, Fingerprint, RetryPolicy, StageStore, SCHEMA_VERSION,
};

#[cfg(feature = "fault-injection")]
pub mod fault;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher — the checksum and fingerprint hash.
///
/// Deliberately non-cryptographic: checkpoints defend against crashes
/// and operator error (wrong directory, changed config), not against an
/// adversary who can already write arbitrary files.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::fnv1a;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
