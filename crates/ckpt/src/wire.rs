//! The checkpoint payload encoding: length-prefixed, little-endian,
//! schema-free.
//!
//! Every value a checkpoint persists is written with [`Enc`] and read
//! back with [`Dec`]. The format is deliberately minimal — fixed-width
//! little-endian integers, `f64` as raw IEEE-754 bits (lossless, NaN
//! payloads included), `u64` length prefixes for sequences — because the
//! crash-safety property the pipeline tests is *byte-identical
//! round-trips*: `encode(decode(encode(x))) == encode(x)` for every
//! persisted type. Floats as bits (never text) is what makes similarity
//! scores survive a round-trip exactly.
//!
//! Decoding is total: malformed input yields a [`WireError`], never a
//! panic, even though in practice the surrounding checkpoint file format
//! has already checksum-verified the bytes.

use catapult_graph::{Graph, Label, TallyCounts, VertexId};
use std::time::Duration;

/// Why a payload failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value did.
    Truncated,
    /// Input kept going after the last expected value.
    Trailing,
    /// A structurally invalid value (bad edge, oversized length, …).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Trailing => write!(f, "payload has trailing bytes"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder.
#[derive(Clone, Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as `u64` (the format is 64-bit regardless of host).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` as raw IEEE-754 bits — lossless for every value including
    /// NaNs, which text formatting would not be.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Unprefixed raw bytes — for fixed-width fields (file magic) whose
    /// length is part of the format itself.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Length-prefixed `u32` sequence.
    pub fn u32s(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }

    /// Length-prefixed `u64` sequence.
    pub fn u64s(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Length-prefixed `f64` sequence (bit-exact).
    pub fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// A [`Duration`] as whole seconds + subsecond nanos (lossless).
    pub fn duration(&mut self, v: Duration) {
        self.u64(v.as_secs());
        self.u32(v.subsec_nanos());
    }

    /// A [`Graph`]: vertex labels then edge endpoint pairs.
    pub fn graph(&mut self, g: &Graph) {
        self.usize(g.vertex_count());
        for &Label(l) in g.labels() {
            self.u32(l);
        }
        self.usize(g.edge_count());
        for (_, e) in g.edges() {
            self.u32(e.u.0);
            self.u32(e.v.0);
        }
    }

    /// A [`TallyCounts`] snapshot (all five counters).
    pub fn tally(&mut self, t: &TallyCounts) {
        self.u64(t.exact);
        self.u64(t.budget_exhausted);
        self.u64(t.deadline_exceeded);
        self.u64(t.cancelled);
        self.u64(t.failed);
    }

    /// Nested clusters (`Vec<Vec<u32>>`).
    pub fn clusters(&mut self, cs: &[Vec<u32>]) {
        self.usize(cs.len());
        for c in cs {
            self.u32s(c);
        }
    }
}

/// Cursor-based decoder over an encoded payload.
#[derive(Clone, Copy, Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the whole payload was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// A `u64` narrowed to `usize`, bounded by the bytes actually
    /// remaining when used as a sequence length elsewhere.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Malformed("length exceeds usize"))
    }

    /// A sequence length: decoded and sanity-bounded against the bytes
    /// remaining (each element takes ≥ 1 byte), so corrupt lengths fail
    /// fast instead of attempting absurd allocations.
    fn len_capped(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(WireError::Malformed("sequence length exceeds payload"));
        }
        Ok(n)
    }

    /// `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Boolean.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte")),
        }
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len_capped(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Exactly `n` unprefixed raw bytes (fixed-width fields).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::Malformed("utf-8 string"))
    }

    /// Length-prefixed `u32` sequence.
    pub fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.len_capped(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Length-prefixed `u64` sequence.
    pub fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.len_capped(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Length-prefixed `f64` sequence (bit-exact).
    pub fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.len_capped(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// A [`Duration`].
    pub fn duration(&mut self) -> Result<Duration, WireError> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(WireError::Malformed("duration nanos"));
        }
        Ok(Duration::new(secs, nanos))
    }

    /// A [`Graph`] (validated vertex/edge structure).
    pub fn graph(&mut self) -> Result<Graph, WireError> {
        let nv = self.len_capped(4)?;
        let mut g = Graph::with_capacity(nv, 0);
        for _ in 0..nv {
            g.add_vertex(Label(self.u32()?));
        }
        let ne = self.len_capped(8)?;
        for _ in 0..ne {
            let a = self.u32()?;
            let b = self.u32()?;
            g.add_edge(VertexId(a), VertexId(b))
                .map_err(|_| WireError::Malformed("invalid edge"))?;
        }
        Ok(g)
    }

    /// A [`TallyCounts`] snapshot.
    pub fn tally(&mut self) -> Result<TallyCounts, WireError> {
        Ok(TallyCounts {
            exact: self.u64()?,
            budget_exhausted: self.u64()?,
            deadline_exceeded: self.u64()?,
            cancelled: self.u64()?,
            failed: self.u64()?,
        })
    }

    /// Nested clusters (`Vec<Vec<u32>>`).
    pub fn clusters(&mut self) -> Result<Vec<Vec<u32>>, WireError> {
        let n = self.len_capped(8)?;
        (0..n).map(|_| self.u32s()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        for l in [3u32, 1, 4, 1] {
            g.add_vertex(Label(l));
        }
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(1), VertexId(2)).unwrap();
        g.add_edge(VertexId(2), VertexId(3)).unwrap();
        g
    }

    #[test]
    fn primitives_roundtrip_byte_identically() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.bool(true);
        e.str("hällo");
        e.u32s(&[1, 2, 3]);
        e.f64s(&[0.1, f64::INFINITY]);
        e.duration(Duration::new(5, 999_999_999));
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "hällo");
        assert_eq!(d.u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.f64s().unwrap(), vec![0.1, f64::INFINITY]);
        assert_eq!(d.duration().unwrap(), Duration::new(5, 999_999_999));
        d.finish().unwrap();
    }

    #[test]
    fn graph_and_tally_roundtrip() {
        let g = sample_graph();
        let t = TallyCounts {
            exact: 10,
            budget_exhausted: 2,
            deadline_exceeded: 1,
            cancelled: 0,
            failed: 3,
        };
        let mut e = Enc::new();
        e.graph(&g);
        e.tally(&t);
        e.clusters(&[vec![1, 2], vec![], vec![9]]);
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        let g2 = d.graph().unwrap();
        assert_eq!(g2.labels(), g.labels());
        assert_eq!(
            g2.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
        assert_eq!(d.tally().unwrap(), t);
        assert_eq!(d.clusters().unwrap(), vec![vec![1, 2], vec![], vec![9u32]]);
        d.finish().unwrap();

        // Byte-identical re-encode: encode(decode(encode(x))) == encode(x).
        let mut e2 = Enc::new();
        e2.graph(&g2);
        e2.tally(&t);
        e2.clusters(&[vec![1, 2], vec![], vec![9]]);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn decode_errors_are_total() {
        let mut e = Enc::new();
        e.str("hello");
        let bytes = e.into_bytes();
        // Truncate mid-string: the length guard fires before the read.
        let mut d = Dec::new(&bytes[..bytes.len() - 2]);
        assert_eq!(
            d.str(),
            Err(WireError::Malformed("sequence length exceeds payload"))
        );
        // Truncate inside the length prefix itself.
        let mut d = Dec::new(&bytes[..4]);
        assert_eq!(d.str(), Err(WireError::Truncated));
        // Trailing garbage is caught by finish().
        let mut extended = bytes.clone();
        extended.push(0);
        let mut d = Dec::new(&extended);
        d.str().unwrap();
        assert_eq!(d.finish(), Err(WireError::Trailing));
        // An absurd length fails fast instead of allocating.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let huge = e.into_bytes();
        assert!(Dec::new(&huge).u32s().is_err());
        // A self-loop edge is structurally rejected.
        let mut e = Enc::new();
        e.usize(1);
        e.u32(0);
        e.usize(1);
        e.u32(0);
        e.u32(0);
        let bad = e.into_bytes();
        assert!(matches!(
            Dec::new(&bad).graph(),
            Err(WireError::Malformed("invalid edge"))
        ));
    }
}
