//! Proof that a disabled [`Recorder`] is allocation-free on the hot
//! path: a counting global allocator wraps `System`, and each no-op
//! entry point must leave the allocation counter untouched.
//!
//! `unsafe` is required by the `GlobalAlloc` contract (the impl only
//! delegates to `System`); the crate-local lint policy uses `deny`
//! instead of the workspace's `forbid` exactly so this one reviewed
//! allow can exist — see crates/obs/Cargo.toml.

#![allow(unsafe_code)]
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult_obs::{Kernel, KernelMeasurement, Recorder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Run `f` and return how many allocations it performed.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_recorder_hot_path_never_allocates() {
    let recorder = Recorder::disabled();
    let counter = recorder.counter("stage.kernel.metric");
    let histogram = recorder.histogram("stage.kernel.metric");
    let probe = recorder.stage_probe("stage");

    let count = allocations_in(|| {
        for i in 0..1000u64 {
            // Span open/close: the pair every pipeline stage pays.
            let span = recorder.span("hot");
            drop(span);
            // Counter and histogram handles resolved ahead of time, as
            // the kernels do.
            counter.add(i);
            histogram.record(i);
            // Handle resolution itself must also be free when disabled.
            recorder.counter("other.kernel.metric").incr();
            recorder.histogram("other.kernel.metric").record(i);
            // One full kernel-invocation flush.
            probe.flush(
                Kernel::Iso,
                KernelMeasurement {
                    probes: i,
                    checks: 1,
                    improved: 0,
                    exact: true,
                },
            );
            probe.add("kernel", "metric", i);
        }
    });
    assert_eq!(count, 0, "disabled recorder allocated {count} times");
}

#[test]
fn enabled_recorder_span_reuse_does_not_grow_per_iteration() {
    // Not zero-alloc (each span appends a record), but the per-span cost
    // must be bounded: pre-warmed counters and probes add nothing.
    let recorder = Recorder::enabled();
    let counter = recorder.counter("stage.kernel.metric");
    let probe = recorder.stage_probe("stage");
    // Warm up the span store so Vec growth amortizes out of the window.
    for _ in 0..4096 {
        drop(recorder.span("warm"));
    }
    let count = allocations_in(|| {
        for i in 0..1000u64 {
            counter.add(i);
            probe.flush(Kernel::Mcs, KernelMeasurement::default());
        }
    });
    assert_eq!(
        count, 0,
        "pre-resolved counter/probe paths allocated {count} times"
    );
}
