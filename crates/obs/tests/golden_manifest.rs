//! Golden-file pin of the RunManifest JSON schema.
//!
//! The manifest is the machine-readable contract between a `catapult`
//! run and downstream tooling: field *order* and field *names* are part
//! of the schema, versioned by `schema_version`. This test renders a
//! manifest from a fully synthetic snapshot (no clocks, no host info) and
//! compares it byte-for-byte against `tests/golden/manifest_v1.json`.
//!
//! If this test fails because the layout intentionally changed, bump
//! [`catapult_obs::SCHEMA_VERSION`] and regenerate the golden file (the
//! failure message prints the new rendering).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use catapult_obs::json::Value;
use catapult_obs::recorder::Snapshot;
use catapult_obs::{HistogramSummary, RunManifest, SpanRecord, SCHEMA_VERSION};

/// A snapshot with every value pinned: two nested spans plus one root
/// sibling, kernel counters for one stage, one histogram.
fn synthetic_snapshot() -> Snapshot {
    Snapshot {
        spans: vec![
            SpanRecord {
                name: "pipeline",
                id: 0,
                parent: None,
                start_ns: 0,
                end_ns: Some(1_000_000),
                worker: 0,
            },
            SpanRecord {
                name: "mining",
                id: 1,
                parent: Some(0),
                start_ns: 10_000,
                end_ns: Some(600_000),
                worker: 0,
            },
            SpanRecord {
                name: "evaluate",
                id: 2,
                parent: None,
                start_ns: 1_100_000,
                end_ns: Some(1_200_000),
                worker: 3,
            },
        ],
        counters: vec![
            ("mining.iso.calls".to_string(), 12),
            ("mining.iso.probes".to_string(), 345),
            ("scoring.greedy.iterations".to_string(), 4),
        ],
        histograms: vec![(
            "mining.iso.probes_per_call".to_string(),
            HistogramSummary {
                count: 12,
                sum: 345,
                p50: 16,
                p90: 64,
                p99: 64,
            },
        )],
    }
}

fn synthetic_manifest() -> String {
    let mut m = RunManifest::new("golden");
    let mut argv = Value::array();
    argv.push("--db");
    argv.push("db.txt");
    m.set("argv", argv);
    let mut env = Value::object();
    env.set("threads", 2u64);
    env.set("os", "linux");
    m.set("environment", env);
    m.attach_snapshot(&synthetic_snapshot());
    m.render()
}

#[test]
fn manifest_layout_matches_the_golden_file() {
    let got = synthetic_manifest();
    let golden = include_str!("golden/manifest_v1.json");
    assert_eq!(
        got, golden,
        "RunManifest layout drifted from the v{SCHEMA_VERSION} golden; if \
         intentional, bump SCHEMA_VERSION and refresh \
         crates/obs/tests/golden/manifest_v1.json with the rendering above"
    );
}

#[test]
fn golden_file_is_self_describing() {
    let golden = include_str!("golden/manifest_v1.json");
    assert_eq!(
        catapult_obs::schema_version_of(golden),
        Some(SCHEMA_VERSION),
        "golden must carry the current schema_version"
    );
    // schema_version must be the *first* field so partial/streamed reads
    // can dispatch on it.
    assert!(golden.starts_with("{\n  \"schema_version\":"));
}

#[test]
fn rendering_is_deterministic() {
    assert_eq!(synthetic_manifest(), synthetic_manifest());
}

#[test]
#[ignore]
fn regen_golden() {
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/manifest_v1.json"),
        synthetic_manifest(),
    )
    .unwrap();
}
