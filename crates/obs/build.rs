//! Captures the compiler version at build time so run manifests can
//! record it without shelling out at runtime (the binary may run on a
//! host without a toolchain).

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = std::process::Command::new(rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    println!("cargo:rustc-env=CATAPULT_OBS_RUSTC={version}");
    println!("cargo:rerun-if-changed=build.rs");
}
