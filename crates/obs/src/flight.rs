//! The flight recorder: an always-on, bounded, process-global log of
//! structured runtime events for crash forensics.
//!
//! The [`Recorder`](crate::Recorder) answers "where did the time go"
//! *after* a successful run; the flight recorder answers "what was the
//! process doing" when a run dies. It is designed for the failure path:
//!
//! * **Bounded per-worker ring buffers.** Events land in one of
//!   [`SLOTS`] fixed-capacity rings selected by the rayon-shim worker id
//!   ([`crate::worker::current`]), so a hot worker can only evict its own
//!   history and the caller thread's timeline survives a worker storm.
//!   Overflow evicts the oldest event in that slot and bumps a `dropped`
//!   count — truncation is reported, never silent.
//! * **Near-zero cost.** Disabled (the default), [`event`] is one
//!   relaxed atomic load. Enabled, a push is a clock read plus an
//!   uncontended per-slot mutex; event payloads are `Copy` (`&'static
//!   str` names, two integers) so the hot path allocates nothing after
//!   a slot's one-time ring allocation.
//! * **Schema-versioned dumps.** [`dump_json`] renders the merged,
//!   sequence-ordered log through the hand-rolled [`crate::json`]
//!   writer with its own [`FLIGHT_SCHEMA_VERSION`], and
//!   [`crate::manifest::guard_overwrite`] applies to dump paths like
//!   any other manifest.
//! * **Dump on panic.** [`arm_crash_dump`] installs a chaining panic
//!   hook that writes the flight log before unwinding begins — it fires
//!   for fail-fast worker panics, for the ckpt fault-injection crash
//!   path, and for plain bugs. The supervised executor
//!   (`collect_isolated`) additionally logs every isolated
//!   [`ItemPanic`](https://docs.rs/rayon) as a `flight.worker.panic`
//!   event even though it never unwinds past the item.
//!
//! Event names follow the same `stage.kernel.metric` convention as
//! counters (`flight.span.open`, `flight.ckpt.write`, …); `cargo xtask
//! lint` rule 7 checks literal call sites.

use crate::json::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Schema version of `flight.json` dumps. Bump on any layout change.
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// Number of per-worker ring buffers. Worker ids map onto slots modulo
/// this, so arbitrarily large pools still get bounded memory; slot 0 is
/// always the caller thread.
pub const SLOTS: usize = 32;

/// Events each slot retains; the oldest is evicted on overflow.
pub const SLOT_CAPACITY: usize = 1024;

/// Interned-detail table size cap (see [`interned`]).
const MAX_INTERNED: usize = 64;

/// One recorded flight event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Process-global sequence number (total order across slots).
    pub seq: u64,
    /// Monotonic ns since the flight recorder was first enabled.
    pub t_ns: u64,
    /// Rayon-shim worker id at push time (0 = caller thread).
    pub worker: u32,
    /// Event name (`flight.span.open`, `flight.ckpt.write`, …).
    pub name: &'static str,
    /// Event subject (span name, stage name, …); `""` when n/a.
    pub detail: &'static str,
    /// Event-specific magnitude (probe count, item index, seq, …).
    pub arg: u64,
}

/// One slot's bounded history.
#[derive(Debug, Default)]
struct Ring {
    /// Events in arrival order once rotated (see [`Ring::drain`]).
    buf: Vec<FlightEvent>,
    /// Next write position when the ring is full.
    head: usize,
    /// Events evicted from this slot.
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: FlightEvent) {
        if self.buf.len() < SLOT_CAPACITY {
            self.buf.push(ev);
            return;
        }
        self.buf[self.head] = ev;
        self.head = (self.head + 1) % SLOT_CAPACITY;
        self.dropped += 1;
    }

    /// Events in arrival order (oldest first), plus the dropped count.
    fn drain(&self) -> (Vec<FlightEvent>, u64) {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        (out, self.dropped)
    }
}

/// Whether [`event`] records anything. Off by default so library users
/// (and the no-alloc proofs) pay exactly one atomic load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-global event sequence; also the total order for merged dumps.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Epoch for `t_ns`, fixed at first enable.
static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();

/// The per-worker rings, allocated lazily on first enable.
static RINGS: OnceLock<Vec<Mutex<Ring>>> = OnceLock::new();

/// Where the panic hook dumps to (None = disarmed).
static CRASH_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Interned copies of dynamic detail strings (bounded; see [`interned`]).
static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Lock a mutex, ignoring poison: rings hold plain data, and the panic
/// hook must still be able to dump after a panicking instrumented thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn rings() -> &'static Vec<Mutex<Ring>> {
    RINGS.get_or_init(|| (0..SLOTS).map(|_| Mutex::new(Ring::default())).collect())
}

/// Turn the flight recorder on or off. The CLI enables it for every
/// run; the epoch is fixed the first time it is enabled.
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.set(crate::now());
        let _ = rings();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`event`] currently records.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one event. A no-op (one atomic load) when disabled.
#[inline]
pub fn event(name: &'static str, detail: &'static str, arg: u64) {
    if !is_enabled() {
        return;
    }
    record(name, detail, arg);
}

#[cold]
fn record(name: &'static str, detail: &'static str, arg: u64) {
    let t_ns = EPOCH.get().map_or(0, |e| {
        u64::try_from(e.elapsed().as_nanos()).unwrap_or(u64::MAX)
    });
    let worker = crate::worker::current();
    let ev = FlightEvent {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        t_ns,
        worker,
        name,
        detail,
        arg,
    };
    let slot = worker as usize % SLOTS;
    lock(&rings()[slot]).push(ev);
}

/// Intern a dynamic detail string so call sites with non-`'static`
/// subjects (checkpoint stage names) can still attach them to events.
///
/// The table is bounded at [`MAX_INTERNED`] distinct strings — the
/// pipeline's stage vocabulary is a handful of names — and returns a
/// sentinel once full, so unbounded caller input can never leak
/// unbounded memory.
#[must_use]
pub fn interned(s: &str) -> &'static str {
    let mut table = lock(&INTERNED);
    if let Some(hit) = table.iter().find(|t| **t == s) {
        return hit;
    }
    if table.len() >= MAX_INTERNED {
        return "<interned-table-full>";
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

/// Everything currently retained, merged across slots in sequence
/// order, plus the total evicted-event count.
#[must_use]
pub fn snapshot() -> (Vec<FlightEvent>, u64) {
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in rings() {
        let (mut evs, d) = lock(ring).drain();
        events.append(&mut evs);
        dropped += d;
    }
    events.sort_by_key(|e| e.seq);
    (events, dropped)
}

/// Render the current flight log as a schema-versioned JSON value.
#[must_use]
pub fn dump_json() -> Value {
    let (events, dropped) = snapshot();
    let mut root = Value::object();
    root.set("schema_version", FLIGHT_SCHEMA_VERSION);
    root.set("slots", SLOTS as u64);
    root.set("slot_capacity", SLOT_CAPACITY as u64);
    root.set("dropped_events", dropped);
    let mut arr = Value::array();
    for e in &events {
        let mut ev = Value::object();
        ev.set("seq", e.seq);
        ev.set("t_ns", e.t_ns);
        ev.set("worker", e.worker);
        ev.set("name", e.name);
        if !e.detail.is_empty() {
            ev.set("detail", e.detail);
        }
        ev.set("arg", e.arg);
        arr.push(ev);
    }
    root.set("events", arr);
    root
}

/// Write the current flight log to `path` (see [`dump_json`]).
///
/// The file is schema-versioned, so
/// [`guard_overwrite`](crate::manifest::guard_overwrite) protects it
/// like any other manifest: refuse a foreign file unless `--force`.
pub fn dump_to(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, dump_json().render())
}

/// Arm the panic-time dump: any panic after this writes the flight log
/// to `path` before unwinding continues (the previous panic hook still
/// runs afterwards, so test-harness and default backtraces survive).
///
/// The hook itself is installed once per process; re-arming only
/// swaps the destination path. Passing the path of an armed dump to
/// [`disarm_crash_dump`] stops panic-time writes again.
pub fn arm_crash_dump(path: &Path) {
    *lock(&CRASH_PATH) = Some(path.to_path_buf());
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            event("flight.panic.hook", "", 0);
            if let Some(path) = lock(&CRASH_PATH).clone() {
                // Best-effort: a failing dump must not turn a panic
                // into an abort.
                let _ = dump_to(&path);
            }
            previous(info);
        }));
    });
}

/// Stop panic-time dumps (normal-exit paths disarm after their own
/// on-demand dump so a later unrelated panic cannot clobber it).
pub fn disarm_crash_dump() {
    *lock(&CRASH_PATH) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flight recorder is process-global; tests serialize on the
    /// rings via this lock and reset state around each body.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn with_flight<R>(f: impl FnOnce() -> R) -> R {
        let _guard = lock(&SERIAL);
        for ring in rings() {
            *lock(ring) = Ring::default();
        }
        set_enabled(true);
        let r = f();
        set_enabled(false);
        disarm_crash_dump();
        r
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _guard = lock(&SERIAL);
        for ring in rings() {
            *lock(ring) = Ring::default();
        }
        set_enabled(false);
        event("flight.test.ignored", "", 1);
        let (events, dropped) = snapshot();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn events_merge_in_sequence_order() {
        with_flight(|| {
            event("flight.test.a", "one", 1);
            {
                let _w = crate::worker::enter(3);
                event("flight.test.b", "two", 2);
            }
            event("flight.test.c", "", 3);
            let (events, dropped) = snapshot();
            assert_eq!(dropped, 0);
            assert_eq!(events.len(), 3);
            assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
            assert_eq!(events[1].worker, 3);
            assert_eq!(events[1].detail, "two");
        });
    }

    #[test]
    fn ring_bounds_and_reports_truncation() {
        with_flight(|| {
            for i in 0..(SLOT_CAPACITY as u64 + 10) {
                event("flight.test.flood", "", i);
            }
            let (events, dropped) = snapshot();
            assert_eq!(events.len(), SLOT_CAPACITY);
            assert_eq!(dropped, 10);
            // The oldest events were evicted, the newest retained.
            assert_eq!(events.last().map(|e| e.arg), Some(SLOT_CAPACITY as u64 + 9));
            assert_eq!(events.first().map(|e| e.arg), Some(10));
        });
    }

    #[test]
    fn dump_is_schema_versioned_and_parses() {
        with_flight(|| {
            event("flight.test.dump", "stage", 7);
            let text = dump_json().render();
            assert_eq!(crate::schema_version_of(&text), Some(FLIGHT_SCHEMA_VERSION));
            let parsed = crate::json::parse(&text).expect("dump parses");
            let events = parsed.get("events").expect("events key");
            match events {
                Value::Array(items) => assert!(!items.is_empty()),
                other => panic!("events not an array: {other:?}"),
            }
        });
    }

    #[test]
    fn interning_is_bounded() {
        let a = interned("clustering");
        let b = interned("clustering");
        assert!(std::ptr::eq(a, b), "repeat lookups reuse the entry");
        for i in 0..(MAX_INTERNED + 5) {
            let _ = interned(&format!("stage-{i}"));
        }
        assert_eq!(interned("one-too-many"), "<interned-table-full>");
    }

    #[test]
    fn panic_hook_dumps_to_armed_path() {
        with_flight(|| {
            let path = std::env::temp_dir().join("catapult-flight-hook-test.json");
            let _ = std::fs::remove_file(&path);
            arm_crash_dump(&path);
            event("flight.test.precrash", "", 1);
            let caught = std::panic::catch_unwind(|| panic!("synthetic crash"));
            assert!(caught.is_err());
            let text = std::fs::read_to_string(&path).expect("flight dump written");
            assert_eq!(crate::schema_version_of(&text), Some(FLIGHT_SCHEMA_VERSION));
            assert!(text.contains("flight.test.precrash"));
            assert!(text.contains("flight.panic.hook"));
            let _ = std::fs::remove_file(&path);
        });
    }
}
