//! Thread-local worker identity for span attribution.
//!
//! The rayon shim (`shims/rayon`) runs parallel closures on short-lived
//! `std::thread::scope` workers. Each worker calls [`enter`] with its
//! 1-based slot index before draining its chunk; spans opened on that
//! thread then carry the worker id in [`SpanRecord::worker`]. Id `0`
//! means "the caller thread" (no pool involved).
//!
//! The id is plain thread-local state — no recorder handle is needed, so
//! the shim can attribute work without depending on which (if any)
//! recorder is active.
//!
//! [`SpanRecord::worker`]: crate::recorder::SpanRecord

use std::cell::Cell;

thread_local! {
    static WORKER: Cell<u32> = const { Cell::new(0) };
}

/// The current thread's worker id (0 = not a pool worker).
#[inline]
#[must_use]
pub fn current() -> u32 {
    WORKER.with(Cell::get)
}

/// Mark the current thread as pool worker `id` until the guard drops.
///
/// Nested scopes restore the previous id, so a worker that itself runs a
/// nested parallel region re-surfaces its own id afterwards.
#[must_use]
pub fn enter(id: u32) -> WorkerGuard {
    let prev = WORKER.with(|w| w.replace(id));
    WorkerGuard { prev }
}

/// RAII guard from [`enter`]; restores the previous worker id on drop.
#[derive(Debug)]
pub struct WorkerGuard {
    prev: u32,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        WORKER.with(|w| w.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_sets_and_restores() {
        assert_eq!(current(), 0);
        {
            let _g = enter(3);
            assert_eq!(current(), 3);
            {
                let _h = enter(7);
                assert_eq!(current(), 7);
            }
            assert_eq!(current(), 3);
        }
        assert_eq!(current(), 0);
    }
}
