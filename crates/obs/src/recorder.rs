//! [`Recorder`]: spans, counters, histograms, and kernel probes.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled ≈ free.** The default recorder is `Recorder(None)`.
//!    Every entry point checks that `Option` first and returns a no-op
//!    handle without reading the clock, locking, or allocating —
//!    tests/no_alloc.rs (workspace root) proves the span/counter/probe
//!    hot path performs zero heap allocations when disabled.
//! 2. **Deterministic aggregation.** Counters are updated only with
//!    commutative `fetch_add`s and snapshotted in `BTreeMap` (name)
//!    order, so enabling the recorder cannot perturb pipeline output and
//!    counter totals are identical for every thread count
//!    (tests/parallel_determinism.rs runs with the recorder on).
//! 3. **Cheap when enabled.** Kernel instrumentation accumulates into
//!    plain `u64`s inside the search loop ([`BudgetMeter`] in
//!    `catapult-graph`) and flushes through [`StageProbe::flush`] once
//!    per kernel invocation — the per-probe cost is one integer add, not
//!    an atomic RMW.
//!
//! [`BudgetMeter`]: https://docs.rs/catapult-graph

use crate::worker;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Handle to a recording session. Clones share the same store.
///
/// `Recorder::default()` is **disabled**: all operations are no-ops and
/// [`Recorder::snapshot`] returns `None`. Construct with
/// [`Recorder::enabled`] to actually record.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

/// Distinguishes recorders on the thread-local span stack so nested
/// tests with independent recorders never cross-parent spans.
static RECORDER_IDS: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct Inner {
    id: u64,
    epoch: std::time::Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

thread_local! {
    /// Stack of open spans on this thread: (recorder id, span id).
    static SPAN_STACK: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
}

/// Lock a mutex, ignoring poison: the stores hold plain data, and a
/// panicking instrumented thread must not cascade into the recorder.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Recorder {
    /// A recorder that records. The epoch (span time zero) is now.
    #[must_use]
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
                epoch: crate::now(),
                spans: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A recorder where everything is a no-op (same as `default()`).
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; it closes when the returned guard drops.
    ///
    /// The parent is the innermost span currently open **on this
    /// thread** for this recorder; the span also records the rayon-shim
    /// worker id active at open time ([`worker::current`]).
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        // The flight recorder sees every span boundary, even under a
        // disabled recorder — crash forensics must not depend on
        // `--metrics-out` having been passed.
        crate::flight::event("flight.span.open", name, 0);
        let Some(inner) = &self.inner else {
            return SpanGuard { open: None, name };
        };
        let start_ns = duration_ns(inner.epoch.elapsed());
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(rec, _)| *rec == inner.id)
                .map(|(_, id)| *id)
        });
        let mut spans = lock(&inner.spans);
        let id = spans.len() as u32;
        spans.push(SpanRecord {
            name,
            id,
            parent,
            start_ns,
            end_ns: None,
            worker: worker::current(),
        });
        drop(spans);
        SPAN_STACK.with(|s| s.borrow_mut().push((inner.id, id)));
        SpanGuard {
            open: Some((Arc::clone(inner), id)),
            name,
        }
    }

    /// A handle to the named counter, registering it on first use.
    ///
    /// Names must follow the `stage.kernel.metric` convention (xtask
    /// lint rule 7 checks literal call sites). Disabled recorders return
    /// a no-op handle without allocating.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let mut counters = lock(&inner.counters);
        let cell = counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// A handle to the named histogram, registering it on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let Some(inner) = &self.inner else {
            return HistogramHandle(None);
        };
        let mut hists = lock(&inner.histograms);
        let cell = hists
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()));
        HistogramHandle(Some(Arc::clone(cell)))
    }

    /// Pre-resolve the full set of kernel cells for a pipeline stage.
    ///
    /// The probe rides on `SearchBudget` into every NP-hard kernel;
    /// resolving the `stage.kernel.metric` counters once per stage keeps
    /// kernel construction allocation-free.
    #[must_use]
    pub fn stage_probe(&self, stage: &'static str) -> StageProbe {
        if self.inner.is_none() {
            return StageProbe(None);
        }
        let kernel_cells = |kernel: Kernel| {
            let name = |metric: &str| format!("{stage}.{}.{metric}", kernel.name());
            KernelCells {
                calls: self.counter(&name("calls")),
                probes: self.counter(&name("probes")),
                checks: self.counter(&name("budget_checks")),
                improved: self.counter(&name("improved")),
                exact: self.counter(&name("exact")),
                degraded: self.counter(&name("degraded")),
                probe_sizes: self.histogram(&name("probes_per_call")),
            }
        };
        StageProbe(Some(Arc::new(StageCells {
            stage,
            recorder: self.clone(),
            kernels: [
                kernel_cells(Kernel::Iso),
                kernel_cells(Kernel::Mcs),
                kernel_cells(Kernel::Ged),
            ],
        })))
    }

    /// Capture everything recorded so far; `None` when disabled.
    ///
    /// Counters and histograms come out in lexicographic name order;
    /// spans in creation order. Open spans are reported with
    /// `end_ns = None`.
    #[must_use]
    pub fn snapshot(&self) -> Option<Snapshot> {
        let inner = self.inner.as_ref()?;
        let spans = lock(&inner.spans).clone();
        let counters = lock(&inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = lock(&inner.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        Some(Snapshot {
            spans,
            counters,
            histograms,
        })
    }
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One recorded span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (short; nesting provides the path, e.g. `pipeline` →
    /// `clustering` → `mining`).
    pub name: &'static str,
    /// Creation-order id, unique within the recorder.
    pub id: u32,
    /// Innermost enclosing span on the opening thread, if any.
    pub parent: Option<u32>,
    /// Monotonic ns since the recorder's epoch at open.
    pub start_ns: u64,
    /// Monotonic ns since the epoch at close; `None` if still open.
    pub end_ns: Option<u64>,
    /// Rayon-shim worker id at open time (0 = caller thread).
    pub worker: u32,
}

impl SpanRecord {
    /// Span duration in ns (0 if still open).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns
            .map_or(0, |end| end.saturating_sub(self.start_ns))
    }
}

/// RAII guard from [`Recorder::span`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<(Arc<Inner>, u32)>,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        crate::flight::event("flight.span.close", self.name, 0);
        let Some((inner, id)) = self.open.take() else {
            return;
        };
        let end_ns = duration_ns(inner.epoch.elapsed());
        if let Some(record) = lock(&inner.spans).get_mut(id as usize) {
            record.end_ns = Some(end_ns);
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Usually the top of the stack; a linear probe tolerates
            // out-of-order guard drops without corrupting neighbors.
            if let Some(at) = stack.iter().rposition(|&e| e == (inner.id, id)) {
                stack.remove(at);
            }
        });
    }
}

/// Lock-free counter handle; a no-op when the recorder is disabled.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n`. Saturates at `u64::MAX`: a pinned total is visibly
    /// wrong in a manifest, a wrapped one silently plausible.
    /// (Saturating add is still commutative and associative, so the
    /// deterministic-aggregation guarantee is unaffected.)
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                Some(c.saturating_add(n))
            });
        }
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Lock-free log₂-bucketed histogram (64 buckets: bucket *i* holds
/// values whose bit length is *i*, i.e. `[2^(i-1), 2^i)`; bucket 0 holds
/// zero).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; 64],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket.min(63)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate instead of wrapping: a sum that pins at u64::MAX is
        // visibly wrong in a manifest, while a wrapped one looks like a
        // plausible small number.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
    }

    /// Aggregate view of everything recorded so far.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Upper bound of bucket i: 2^i - 1 (bucket 0 → 0).
                    return if i == 0 { 0 } else { (1u64 << i) - 1 };
                }
            }
            u64::MAX
        };
        HistogramSummary {
            count,
            sum,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Shareable histogram handle; a no-op when the recorder is disabled.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }
}

/// Aggregate view of a [`Histogram`]. Quantiles are bucket upper bounds
/// (log₂ resolution), deterministic for a given multiset of values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Median (log₂-bucket upper bound).
    pub p50: u64,
    /// 90th percentile (log₂-bucket upper bound).
    pub p90: u64,
    /// 99th percentile (log₂-bucket upper bound).
    pub p99: u64,
}

/// The three NP-hard kernel families the pipeline meters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// VF2 subgraph isomorphism (`catapult-graph::iso`).
    Iso,
    /// Maximum common (connected) subgraph (`catapult-graph::mcs`).
    Mcs,
    /// Graph edit distance (`catapult-graph::ged`).
    Ged,
}

impl Kernel {
    /// All kernels, in manifest order.
    pub const ALL: [Kernel; 3] = [Kernel::Iso, Kernel::Mcs, Kernel::Ged];

    /// The `kernel` segment of `stage.kernel.metric` counter names.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Iso => "iso",
            Kernel::Mcs => "mcs",
            Kernel::Ged => "ged",
        }
    }
}

/// What one kernel invocation reports when it completes (accumulated as
/// plain integers inside the search, flushed once on drop).
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelMeasurement {
    /// Search nodes expanded (`BudgetMeter` ticks).
    pub probes: u64,
    /// Deadline/cancellation polls performed.
    pub checks: u64,
    /// Best-so-far improvements (embeddings found, bounds tightened).
    pub improved: u64,
    /// Whether the search ran to completion ([`Completeness::Exact`]).
    ///
    /// [`Completeness::Exact`]: https://docs.rs/catapult-graph
    pub exact: bool,
}

/// Pre-resolved per-stage kernel counters, carried by `SearchBudget`.
///
/// Cloning is one `Arc` bump (or free when disabled), so the probe can
/// ride through config plumbing and into every `BudgetMeter`.
#[derive(Clone, Debug, Default)]
pub struct StageProbe(Option<Arc<StageCells>>);

#[derive(Debug)]
struct StageCells {
    stage: &'static str,
    recorder: Recorder,
    /// Indexed by `Kernel as usize`.
    kernels: [KernelCells; 3],
}

/// The atomic cells behind one (stage, kernel) pair.
#[derive(Clone, Debug, Default)]
struct KernelCells {
    calls: Counter,
    probes: Counter,
    checks: Counter,
    improved: Counter,
    exact: Counter,
    degraded: Counter,
    probe_sizes: HistogramHandle,
}

impl StageProbe {
    /// Whether flushes reach a live recorder.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The stage this probe attributes kernel work to.
    #[must_use]
    pub fn stage(&self) -> Option<&'static str> {
        self.0.as_ref().map(|c| c.stage)
    }

    /// Flush one finished kernel invocation into the stage counters.
    pub fn flush(&self, kernel: Kernel, m: KernelMeasurement) {
        // Flight events fire even for a disabled probe: the flight
        // recorder's budget-degradation trail must not depend on
        // `--metrics-out`. Without stage cells the kernel name is the
        // best available subject.
        let subject = self.0.as_ref().map_or(kernel.name(), |c| c.stage);
        crate::flight::event("flight.probe.flush", subject, m.probes);
        if !m.exact {
            crate::flight::event("flight.budget.degraded", subject, m.probes);
        }
        let Some(cells) = &self.0 else {
            return;
        };
        let k = &cells.kernels[kernel as usize];
        k.calls.incr();
        k.probes.add(m.probes);
        k.checks.add(m.checks);
        k.improved.add(m.improved);
        if m.exact {
            k.exact.incr();
        } else {
            k.degraded.incr();
        }
        k.probe_sizes.record(m.probes);
    }

    /// Bump an ad-hoc `stage.kernel.metric` counter under this probe's
    /// stage — for non-search metrics (e.g. `mining.subtree.levels`)
    /// where pre-resolved cells would be overkill.
    pub fn add(&self, kernel: &str, metric: &str, n: u64) {
        let Some(cells) = &self.0 else {
            return;
        };
        cells
            .recorder
            .counter(&format!("{}.{kernel}.{metric}", cells.stage))
            .add(n);
    }
}

/// Everything a recorder captured, in deterministic order.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Spans in creation order.
    pub spans: Vec<SpanRecord>,
    /// Counters sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Sum of all `counters` whose name matches `stage.*.metric`.
    #[must_use]
    pub fn stage_metric_total(&self, stage: &str, metric: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| {
                let parts: Vec<&str> = name.split('.').collect();
                parts.len() >= 3 && parts[0] == stage && parts.last() == Some(&metric)
            })
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let _span = rec.span("nothing");
        rec.counter("a.b.c").add(5);
        rec.stage_probe("s")
            .flush(Kernel::Iso, KernelMeasurement::default());
        assert!(rec.snapshot().is_none());
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            {
                let _inner = rec.span("inner");
            }
            let _sibling = rec.span("sibling");
        }
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].name, "outer");
        assert_eq!(snap.spans[0].parent, None);
        assert_eq!(snap.spans[1].name, "inner");
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[2].name, "sibling");
        assert_eq!(snap.spans[2].parent, Some(0));
        for s in &snap.spans {
            assert!(s.end_ns.is_some(), "span {} left open", s.name);
            assert!(s.end_ns >= Some(s.start_ns));
        }
    }

    #[test]
    fn two_recorders_do_not_cross_parent() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        let _sa = a.span("a-root");
        let sb = b.span("b-root");
        drop(sb);
        let snap = b.snapshot().unwrap();
        assert_eq!(snap.spans[0].parent, None, "b's span parented under a's");
    }

    #[test]
    fn counters_aggregate_across_clones_and_threads() {
        let rec = Recorder::enabled();
        let c = rec.counter("stage.kern.metric");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(rec.counter("stage.kern.metric").get(), 4000);
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.counters, vec![("stage.kern.metric".to_string(), 4000)]);
    }

    #[test]
    fn stage_probe_flushes_into_named_counters() {
        let rec = Recorder::enabled();
        let probe = rec.stage_probe("scoring");
        probe.flush(
            Kernel::Iso,
            KernelMeasurement {
                probes: 10,
                checks: 2,
                improved: 1,
                exact: true,
            },
        );
        probe.flush(
            Kernel::Iso,
            KernelMeasurement {
                probes: 30,
                checks: 4,
                improved: 0,
                exact: false,
            },
        );
        assert_eq!(rec.counter("scoring.iso.calls").get(), 2);
        assert_eq!(rec.counter("scoring.iso.probes").get(), 40);
        assert_eq!(rec.counter("scoring.iso.budget_checks").get(), 6);
        assert_eq!(rec.counter("scoring.iso.improved").get(), 1);
        assert_eq!(rec.counter("scoring.iso.exact").get(), 1);
        assert_eq!(rec.counter("scoring.iso.degraded").get(), 1);
        assert_eq!(rec.counter("scoring.mcs.calls").get(), 0);
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.stage_metric_total("scoring", "probes"), 40);
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(name, _)| name == "scoring.iso.probes_per_call")
            .unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 40);
    }

    #[test]
    fn histogram_quantiles_use_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 106);
        assert_eq!(s.p50, 3); // bucket [2,4) → upper bound 3
        assert_eq!(s.p99, 127); // bucket [64,128) → upper bound 127
    }

    #[test]
    fn probe_ad_hoc_add_uses_stage_prefix() {
        let rec = Recorder::enabled();
        let probe = rec.stage_probe("mining");
        probe.add("subtree", "levels", 3);
        assert_eq!(rec.counter("mining.subtree.levels").get(), 3);
    }

    #[test]
    fn empty_histogram_summary_is_well_defined() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        // With no samples the quantile sentinel is 0 (the count == 0
        // early return), never a garbage bucket bound.
        assert_eq!(s.p50, 0);
        assert_eq!(s.p90, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn single_sample_histogram_pins_every_quantile() {
        let h = Histogram::new();
        h.record(5);
        let s = h.summary();
        assert_eq!((s.count, s.sum), (1, 5));
        // One sample in bucket [4,8): all quantiles report its upper bound.
        assert_eq!((s.p50, s.p90, s.p99), (7, 7, 7));

        let zero = Histogram::new();
        zero.record(0);
        let s = zero.summary();
        assert_eq!((s.count, s.sum), (1, 0));
        assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(7);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, u64::MAX, "overflow must pin, not wrap");
        // Extreme values land in the top bucket, reported at its upper
        // bound 2^63 - 1.
        assert_eq!(s.p99, (1u64 << 63) - 1);
    }

    #[test]
    fn counter_saturates_at_max() {
        let rec = Recorder::enabled();
        let c = rec.counter("mining.test.saturation");
        c.add(u64::MAX);
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX, "counter overflow must pin, not wrap");
    }
}
