// Lint policy: see [workspace.lints] in the root Cargo.toml.
// (This crate carries a local copy with `unsafe_code = "deny"`; the
// rationale lives next to the `[lints]` table in crates/obs/Cargo.toml.)
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
//! Zero-dependency tracing and metrics for the CATAPULT pipeline.
//!
//! The paper's experiments (§7) report *where* pattern-selection time
//! goes — per-stage latency, kernel search effort, scaling with |D| —
//! and this crate is the measurement substrate that makes those tables
//! reproducible from a single run:
//!
//! * [`Recorder`] — a cloneable, `Send + Sync` handle threaded through
//!   every pipeline stage. A **disabled** recorder (the default) is a
//!   `None` behind the handle: every operation returns immediately
//!   without allocating, locking, or reading the clock
//!   (tests/no_alloc.rs proves the span hot path allocation-free, and
//!   benches/overhead.rs measures the per-op cost).
//! * [`SpanGuard`] — RAII wall-time spans with parent nesting (a
//!   thread-local stack) and worker-thread attribution (see [`worker`]).
//! * [`Counter`] / [`Histogram`] — lock-free atomic cells. Kernels
//!   accumulate into plain integers and flush **once per kernel call**
//!   ([`StageProbe::flush`]), so per-thread effort aggregates through
//!   commutative `fetch_add`s and totals stay deterministic across
//!   thread counts.
//! * [`RunManifest`] — a schema-versioned, machine-readable JSON record
//!   of a run (spans tree, counters, environment), written by the CLI's
//!   `--metrics-out` and by the bench drivers.
//!
//! Counter names follow the `stage.kernel.metric` convention enforced by
//! `cargo xtask lint` (rule 7); the same rule forbids raw
//! `Instant::now()` timing outside this crate, so [`now`] and
//! [`Stopwatch`] are the blessed clock accessors.

pub mod chrome;
pub mod flight;
pub mod json;
pub mod manifest;
pub mod progress;
pub mod recorder;
pub mod trace;
pub mod worker;

pub use manifest::{schema_version_of, ManifestError, RunManifest, SCHEMA_VERSION};
pub use recorder::{
    Counter, Histogram, HistogramHandle, HistogramSummary, Kernel, KernelMeasurement, Recorder,
    Snapshot, SpanGuard, SpanRecord, StageProbe,
};
pub use trace::summary_table;

/// Print a one-shot warning to stderr and log it to the flight
/// recorder.
///
/// The blessed replacement for raw `eprintln!` warnings in pipeline
/// crates (xtask lint rule 7 forbids those outside this crate): routing
/// warnings through here keeps them on stderr — never perturbing stdout
/// determinism — and preserves them in crash dumps.
pub fn warn(msg: impl std::fmt::Display) {
    flight::event("flight.log.warning", "", 0);
    eprintln!("warning: {msg}");
}

use std::time::{Duration, Instant};

/// Read the monotonic clock.
///
/// The only sanctioned `Instant::now()` call site in the workspace
/// (xtask lint rule 7): routing every clock read through here keeps
/// wall-time observability auditable and lets the budget layer
/// ([`Deadline`]) share the recorder's clock.
///
/// [`Deadline`]: https://docs.rs/catapult-graph
#[inline]
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// A started wall-clock timer; the blessed replacement for ad-hoc
/// `let start = Instant::now(); ... start.elapsed()` pairs.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[inline]
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { started: now() }
    }

    /// Wall time elapsed since [`Stopwatch::start`].
    #[inline]
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
