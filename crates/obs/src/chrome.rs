//! Trace export: Chrome trace-event JSON and folded flame stacks.
//!
//! [`chrome_trace`] converts a recorder [`Snapshot`] into the Trace
//! Event Format consumed by `chrome://tracing`, Perfetto, and Speedscope
//! — each closed span becomes a complete (`"ph": "X"`) event, spans
//! still open at snapshot time become begin (`"ph": "B"`) events, and
//! every rayon-shim worker gets its own lane via the `tid` field plus a
//! `thread_name` metadata record. Timestamps are the recorder's
//! monotonic nanoseconds floored to the format's microseconds; the exact
//! ns values ride along in `args` so nothing is lost.
//!
//! [`folded_stacks`] renders the same span tree in the folded-stack text
//! format flamegraph tooling consumes (`inferno`, `flamegraph.pl`,
//! Speedscope): one `root;child;leaf <self_ns>` line per call path,
//! weighted by *self* time so a parent's bar does not double-count its
//! children.
//!
//! Both writers use the crate's hand-rolled [`crate::json`] output —
//! zero new dependencies — and both are deterministic for a given
//! snapshot: trace events in span-creation order, folded lines sorted
//! lexicographically.

use crate::json::Value;
use crate::recorder::{Snapshot, SpanRecord};

/// Schema version stamped on [`chrome_trace`] output. Chrome and
/// Perfetto ignore unknown top-level keys, so the versioned envelope
/// stays loadable by the real consumers while
/// [`crate::manifest::guard_overwrite`] can still protect the file.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Convert a snapshot's span tree to Chrome trace-event JSON.
#[must_use]
pub fn chrome_trace(snapshot: &Snapshot) -> Value {
    let mut events = Value::array();
    // One lane per worker id seen, named up front so the viewer shows
    // "worker 3" instead of a bare tid.
    let mut workers: Vec<u32> = snapshot.spans.iter().map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for w in workers {
        let mut args = Value::object();
        args.set(
            "name",
            if w == 0 {
                "caller".to_string()
            } else {
                format!("worker {w}")
            },
        );
        let mut meta = Value::object();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 1u64);
        meta.set("tid", w);
        meta.set("args", args);
        events.push(meta);
    }
    for span in &snapshot.spans {
        let mut args = Value::object();
        args.set("span_id", span.id);
        match span.parent {
            Some(p) => args.set("parent", p),
            None => args.set("parent", Value::Null),
        };
        args.set("start_ns", span.start_ns);
        if let Some(end) = span.end_ns {
            args.set("end_ns", end);
        }
        let mut ev = Value::object();
        ev.set("name", span.name);
        ev.set("cat", "span");
        ev.set("ph", if span.end_ns.is_some() { "X" } else { "B" });
        ev.set("ts", span.start_ns / 1_000);
        if span.end_ns.is_some() {
            ev.set("dur", span.duration_ns() / 1_000);
        }
        ev.set("pid", 1u64);
        ev.set("tid", span.worker);
        ev.set("args", args);
        events.push(ev);
    }
    let mut root = Value::object();
    root.set("schema_version", TRACE_SCHEMA_VERSION);
    root.set("displayTimeUnit", "ms");
    root.set("traceEvents", events);
    root
}

/// Self time of `span`: its duration minus its direct children's
/// durations (saturating — children recorded on worker threads can
/// overlap and exceed the parent's wall clock).
fn self_time_ns(span: &SpanRecord, spans: &[SpanRecord]) -> u64 {
    let children: u64 = spans
        .iter()
        .filter(|c| c.parent == Some(span.id))
        .map(SpanRecord::duration_ns)
        .sum();
    span.duration_ns().saturating_sub(children)
}

/// Root-to-span call path, `;`-joined (the folded-stack convention).
fn path_of(span: &SpanRecord, spans: &[SpanRecord]) -> String {
    let mut names = vec![span.name];
    let mut cur = span.parent;
    // Parent ids strictly precede children (creation order), so this
    // walk terminates even on a malformed snapshot.
    while let Some(pid) = cur {
        match spans.iter().find(|s| s.id == pid) {
            Some(p) => {
                names.push(p.name);
                cur = p.parent;
            }
            None => break,
        }
    }
    names.reverse();
    names.join(";")
}

/// Render the span tree as folded flame stacks: one
/// `path;to;span <self_ns>` line per distinct call path, sorted
/// lexicographically, weighted by self time in nanoseconds. Open spans
/// (no end time) are skipped — their duration is undefined.
#[must_use]
pub fn folded_stacks(snapshot: &Snapshot) -> String {
    let mut weights: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for span in &snapshot.spans {
        if span.end_ns.is_none() {
            continue;
        }
        let path = path_of(span, &snapshot.spans);
        *weights.entry(path).or_insert(0) += self_time_ns(span, &snapshot.spans);
    }
    let mut out = String::new();
    for (path, ns) in &weights {
        out.push_str(path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_snapshot() -> Snapshot {
        let rec = Recorder::enabled();
        {
            let _root = rec.span("pipeline");
            {
                let _a = rec.span("clustering");
                let _w = crate::worker::enter(2);
                let _b = rec.span("mining");
            }
            let _c = rec.span("selection");
        }
        rec.snapshot().expect("enabled recorder snapshots")
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let trace = chrome_trace(&sample_snapshot());
        let text = trace.render();
        assert_eq!(crate::schema_version_of(&text), Some(TRACE_SCHEMA_VERSION));
        let parsed = crate::json::parse(&text).expect("trace JSON parses");
        let Some(Value::Array(events)) = parsed.get("traceEvents") else {
            panic!("traceEvents missing or not an array");
        };
        assert!(!events.is_empty());
        for ev in events {
            for key in ["name", "ph", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "event missing `{key}`: {ev:?}");
            }
            let Some(Value::Str(ph)) = ev.get("ph") else {
                panic!("ph not a string: {ev:?}");
            };
            match ph.as_str() {
                "X" => {
                    assert!(ev.get("ts").is_some(), "X event missing ts");
                    assert!(ev.get("dur").is_some(), "X event missing dur");
                }
                "B" => assert!(ev.get("ts").is_some(), "B event missing ts"),
                "M" => assert!(
                    ev.get("args").and_then(|a| a.get("name")).is_some(),
                    "metadata event missing args.name"
                ),
                other => panic!("unexpected phase `{other}`"),
            }
        }
    }

    #[test]
    fn chrome_trace_gives_workers_their_own_lanes() {
        let trace = chrome_trace(&sample_snapshot());
        let Some(Value::Array(events)) = trace.get("traceEvents") else {
            panic!("no traceEvents");
        };
        let lane_names: Vec<&Value> = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
            .collect();
        assert!(
            lane_names.contains(&&Value::from("caller")),
            "{lane_names:?}"
        );
        assert!(
            lane_names.contains(&&Value::from("worker 2")),
            "{lane_names:?}"
        );
        // The mining span must sit in worker 2's lane.
        let mining = events
            .iter()
            .find(|e| matches!(e.get("name"), Some(Value::Str(n)) if n == "mining"))
            .expect("mining span exported");
        assert_eq!(mining.get("tid"), Some(&Value::UInt(2)));
    }

    #[test]
    fn folded_stacks_weight_by_self_time() {
        let folded = folded_stacks(&sample_snapshot());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 4, "{folded}");
        assert!(lines.iter().any(|l| l.starts_with("pipeline ")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("pipeline;clustering;mining ")));
        assert!(lines.iter().any(|l| l.starts_with("pipeline;selection ")));
        for line in &lines {
            let (_, weight) = line.rsplit_once(' ').expect("space-separated weight");
            let _: u64 = weight.parse().expect("integer ns weight");
        }
        // Lines come out sorted, so diffs of two exports are meaningful.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn open_spans_export_as_begin_events_and_skip_folding() {
        let rec = Recorder::enabled();
        let _open = rec.span("still_running");
        let snap = rec.snapshot().expect("snapshot");
        let trace = chrome_trace(&snap);
        let Some(Value::Array(events)) = trace.get("traceEvents") else {
            panic!("no traceEvents");
        };
        let open = events
            .iter()
            .find(|e| matches!(e.get("name"), Some(Value::Str(n)) if n == "still_running"))
            .expect("open span exported");
        assert_eq!(open.get("ph"), Some(&Value::Str("B".into())));
        assert!(open.get("dur").is_none());
        assert_eq!(folded_stacks(&snap), "");
    }
}
