//! Minimal hand-rolled JSON with **insertion-ordered** objects.
//!
//! The container has no registry access, so serde is out; this is the
//! same approach `catapult-bench` already uses for `BENCH_*.json`, made
//! reusable. Insertion order is load-bearing: the manifest golden test
//! (tests/manifest_golden.rs at the workspace root) pins the exact byte
//! layout, which requires object keys to render in a stable,
//! author-controlled order.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (counters, nanosecond timestamps).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Finite float; non-finite values render as `null`.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    #[must_use]
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// An empty array.
    #[must_use]
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Set `key` on an object: replaces an existing key in place (keeping
    /// its position) or appends. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Value {
        if let Value::Object(entries) = self {
            let value = value.into();
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        }
        self
    }

    /// Append to an array. No-op on non-arrays.
    pub fn push(&mut self, value: impl Into<Value>) -> &mut Value {
        if let Value::Array(items) = self {
            items.push(value.into());
        }
        self
    }

    /// Look up `key` on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // {:?} is Rust's shortest round-trip form; bench JSON
                    // uses the same convention.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_into(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::UInt(n)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::UInt(n.into())
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::UInt(n as u64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// Parse error with a byte offset, for diagnostics on hand-edited files.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What was expected or found.
    pub message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document back into a [`Value`]. Object key order is
/// preserved as written, matching what [`Value::render`] emits — a
/// render→parse→render round trip is byte-identical. Numbers without a
/// fraction/exponent parse as `UInt`/`Int`; everything else as `Float`.
///
/// This is the read half of the hand-rolled serializer: `catalint` uses
/// it for `catalint.baseline.json`, and tools can read manifests back
/// without a registry dependency.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

/// Recursion guard: deeper documents than this are rejected rather than
/// risking a stack overflow on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                // Surrogate pairs are not produced by the
                                // serializer; reject rather than mangle.
                                None => return Err(self.err("unsupported \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Copy one full UTF-8 char (length from the lead byte).
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[self.pos..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Extract the integer value of a top-level `"key": N` field with a
/// tolerant scan — enough to read `schema_version` back out of a file
/// this module wrote, without a full parser.
#[must_use]
pub fn extract_uint_field(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_preserve_insertion_order() {
        let mut v = Value::object();
        v.set("zebra", 1u64).set("alpha", 2u64).set("mid", "x");
        assert_eq!(
            v.render(),
            "{\n  \"zebra\": 1,\n  \"alpha\": 2,\n  \"mid\": \"x\"\n}\n"
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let mut v = Value::object();
        v.set("a", 1u64).set("b", 2u64).set("a", 9u64);
        assert_eq!(v.render(), "{\n  \"a\": 9,\n  \"b\": 2\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Value::from(f64::NAN).render(), "null\n");
        assert_eq!(Value::from(1.5f64).render(), "1.5\n");
    }

    #[test]
    fn extracts_uint_fields() {
        let text = "{\n  \"schema_version\": 3,\n  \"x\": 1\n}\n";
        assert_eq!(extract_uint_field(text, "schema_version"), Some(3));
        assert_eq!(extract_uint_field(text, "missing"), None);
        assert_eq!(
            extract_uint_field("{\"schema_version\": []}", "schema_version"),
            None
        );
    }

    #[test]
    fn parse_round_trips_render() {
        let mut inner = Value::object();
        inner
            .set("zeta", 1u64)
            .set("alpha", -2i64)
            .set("pi", 3.25f64);
        let mut arr = Value::array();
        arr.push(inner).push(Value::Null).push(true).push("s\"x\n");
        let mut v = Value::object();
        v.set("items", arr).set("empty", Value::array());
        let text = v.render();
        let back = parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.render(), text, "render→parse→render is stable");
    }

    #[test]
    fn parse_preserves_key_order() {
        let v = parse("{\"z\": 1, \"a\": 2}").expect("parses");
        assert_eq!(v.render(), "{\n  \"z\": 1,\n  \"a\": 2\n}\n");
    }

    #[test]
    fn parse_number_types() {
        assert_eq!(parse("7").expect("u"), Value::UInt(7));
        assert_eq!(parse("-7").expect("i"), Value::Int(-7));
        assert_eq!(parse("1.5").expect("f"), Value::Float(1.5));
        assert_eq!(parse("1e3").expect("e"), Value::Float(1000.0));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            parse("\"a\\n\\t\\\"\\\\\\u0041γ\"").expect("parses"),
            Value::Str("a\n\t\"\\Aγ".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1} x", "\"abc"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_runaway_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn nested_layout() {
        let mut inner = Value::object();
        inner.set("n", 1u64);
        let mut arr = Value::array();
        arr.push(inner);
        arr.push(Value::Null);
        let mut v = Value::object();
        v.set("items", arr);
        v.set("empty", Value::array());
        assert_eq!(
            v.render(),
            "{\n  \"items\": [\n    {\n      \"n\": 1\n    },\n    null\n  ],\n  \"empty\": []\n}\n"
        );
    }
}
