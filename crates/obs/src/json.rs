//! Minimal hand-rolled JSON with **insertion-ordered** objects.
//!
//! The container has no registry access, so serde is out; this is the
//! same approach `catapult-bench` already uses for `BENCH_*.json`, made
//! reusable. Insertion order is load-bearing: the manifest golden test
//! (tests/manifest_golden.rs at the workspace root) pins the exact byte
//! layout, which requires object keys to render in a stable,
//! author-controlled order.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (counters, nanosecond timestamps).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Finite float; non-finite values render as `null`.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    #[must_use]
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// An empty array.
    #[must_use]
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Set `key` on an object: replaces an existing key in place (keeping
    /// its position) or appends. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Value {
        if let Value::Object(entries) = self {
            let value = value.into();
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        }
        self
    }

    /// Append to an array. No-op on non-arrays.
    pub fn push(&mut self, value: impl Into<Value>) -> &mut Value {
        if let Value::Array(items) = self {
            items.push(value.into());
        }
        self
    }

    /// Look up `key` on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // {:?} is Rust's shortest round-trip form; bench JSON
                    // uses the same convention.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_into(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::UInt(n)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::UInt(n.into())
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::UInt(n as u64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// Extract the integer value of a top-level `"key": N` field with a
/// tolerant scan — enough to read `schema_version` back out of a file
/// this module wrote, without a full parser.
#[must_use]
pub fn extract_uint_field(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_preserve_insertion_order() {
        let mut v = Value::object();
        v.set("zebra", 1u64).set("alpha", 2u64).set("mid", "x");
        assert_eq!(
            v.render(),
            "{\n  \"zebra\": 1,\n  \"alpha\": 2,\n  \"mid\": \"x\"\n}\n"
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let mut v = Value::object();
        v.set("a", 1u64).set("b", 2u64).set("a", 9u64);
        assert_eq!(v.render(), "{\n  \"a\": 9,\n  \"b\": 2\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Value::from(f64::NAN).render(), "null\n");
        assert_eq!(Value::from(1.5f64).render(), "1.5\n");
    }

    #[test]
    fn extracts_uint_fields() {
        let text = "{\n  \"schema_version\": 3,\n  \"x\": 1\n}\n";
        assert_eq!(extract_uint_field(text, "schema_version"), Some(3));
        assert_eq!(extract_uint_field(text, "missing"), None);
        assert_eq!(
            extract_uint_field("{\"schema_version\": []}", "schema_version"),
            None
        );
    }

    #[test]
    fn nested_layout() {
        let mut inner = Value::object();
        inner.set("n", 1u64);
        let mut arr = Value::array();
        arr.push(inner);
        arr.push(Value::Null);
        let mut v = Value::object();
        v.set("items", arr);
        v.set("empty", Value::array());
        assert_eq!(
            v.render(),
            "{\n  \"items\": [\n    {\n      \"n\": 1\n    },\n    null\n  ],\n  \"empty\": []\n}\n"
        );
    }
}
