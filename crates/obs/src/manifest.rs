//! Schema-versioned, machine-readable run manifests.
//!
//! A [`RunManifest`] is the JSON record of one pipeline or bench run:
//! what command ran, in which environment, the stage span tree, and
//! every counter/histogram the [`Recorder`] captured. The CLI writes one
//! per `--metrics-out PATH`; the bench drivers emit the same shape so
//! `BENCH_*.json` trajectories stay comparable across PRs.
//!
//! Field order is fixed (insertion-ordered [`json::Value`]) and pinned
//! by a golden-file test; any layout change must bump
//! [`SCHEMA_VERSION`]. [`RunManifest::write`] refuses to overwrite a
//! manifest from a *different* schema version unless forced, so stale
//! artifacts are never silently clobbered.
//!
//! [`Recorder`]: crate::Recorder

use crate::json::{self, Value};
use crate::recorder::{Recorder, Snapshot, SpanRecord};
use std::io;
use std::path::Path;

/// Version of the manifest layout. Bump on any field add/remove/reorder.
pub const SCHEMA_VERSION: u64 = 1;

/// Builder for one run's manifest.
#[derive(Clone, Debug)]
pub struct RunManifest {
    root: Value,
}

impl RunManifest {
    /// Start a manifest for `command` (e.g. `"select"`,
    /// `"bench_parallel"`). `schema_version` is always the first field.
    #[must_use]
    pub fn new(command: &str) -> RunManifest {
        let mut root = Value::object();
        root.set("schema_version", SCHEMA_VERSION);
        root.set("command", command);
        RunManifest { root }
    }

    /// Set (or replace) a top-level section.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut RunManifest {
        self.root.set(key, value);
        self
    }

    /// Attach a recorder's capture: `spans` (nested tree), `counters`,
    /// and `histograms` sections. A disabled recorder attaches nothing.
    pub fn attach_recorder(&mut self, recorder: &Recorder) -> &mut RunManifest {
        if let Some(snapshot) = recorder.snapshot() {
            self.attach_snapshot(&snapshot);
        }
        self
    }

    /// Attach an already-captured [`Snapshot`] (the testable core of
    /// [`RunManifest::attach_recorder`]).
    pub fn attach_snapshot(&mut self, snapshot: &Snapshot) -> &mut RunManifest {
        self.root.set("spans", span_tree(&snapshot.spans));
        let mut counters = Value::object();
        for (name, value) in &snapshot.counters {
            counters.set(name, *value);
        }
        self.root.set("counters", counters);
        let mut hists = Value::object();
        for (name, h) in &snapshot.histograms {
            let mut entry = Value::object();
            entry.set("count", h.count);
            entry.set("sum", h.sum);
            entry.set("p50", h.p50);
            entry.set("p90", h.p90);
            entry.set("p99", h.p99);
            hists.set(name, entry);
        }
        self.root.set("histograms", hists);
        self
    }

    /// Render to pretty JSON.
    #[must_use]
    pub fn render(&self) -> String {
        self.root.render()
    }

    /// The underlying JSON tree (for assembling composite documents).
    #[must_use]
    pub fn into_value(self) -> Value {
        self.root
    }

    /// Write to `path`, refusing to overwrite an existing manifest from
    /// a **different** schema version unless `force` is set.
    pub fn write(&self, path: &Path, force: bool) -> Result<(), ManifestError> {
        guard_overwrite(path, force)?;
        std::fs::write(path, self.render()).map_err(ManifestError::Io)
    }
}

/// Check the overwrite guard for `path` without writing: an existing
/// file whose `schema_version` is missing or differs from
/// [`SCHEMA_VERSION`] is refused unless `force`. Shared with the bench
/// drivers, whose `BENCH_*.json` carry the same version field.
pub fn guard_overwrite(path: &Path, force: bool) -> Result<(), ManifestError> {
    if force {
        return Ok(());
    }
    match std::fs::read_to_string(path) {
        Ok(existing) => {
            let found = schema_version_of(&existing);
            if found == Some(SCHEMA_VERSION) {
                Ok(())
            } else {
                Err(ManifestError::SchemaMismatch {
                    path: path.display().to_string(),
                    found,
                })
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(ManifestError::Io(e)),
    }
}

/// Extract `schema_version` from manifest text (`None` for pre-schema
/// files).
#[must_use]
pub fn schema_version_of(text: &str) -> Option<u64> {
    json::extract_uint_field(text, "schema_version")
}

/// The one overwrite-refusal message format, shared by every output the
/// `--force` flag governs (manifests, `BENCH_*.json`, checkpoint
/// directories): `"<path>: <reason>; pass --force to overwrite"`.
#[must_use]
pub fn overwrite_refusal(path: &str, reason: &str) -> String {
    format!("{path}: {reason}; pass --force to overwrite")
}

/// Why a manifest could not be written.
#[derive(Debug)]
pub enum ManifestError {
    /// The target exists and carries a different (or no) schema version.
    SchemaMismatch {
        /// The refused path.
        path: String,
        /// The version found in the existing file, if any.
        found: Option<u64>,
    },
    /// Filesystem error.
    Io(io::Error),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::SchemaMismatch { path, found } => {
                let found = found.map_or_else(|| "none".to_string(), |v| v.to_string());
                let reason = format!(
                    "existing manifest has schema_version {found}, current is {SCHEMA_VERSION}"
                );
                write!(f, "{}", overwrite_refusal(path, &reason))
            }
            ManifestError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// Environment section: thread pool size, host, toolchain, git commit.
///
/// Everything is best-effort — a missing `.git` or unset variable
/// degrades to `null`, never an error.
#[must_use]
pub fn environment(threads: usize) -> Value {
    let mut env = Value::object();
    env.set("threads", threads);
    env.set(
        "host_cpus",
        std::thread::available_parallelism().map_or(0usize, usize::from),
    );
    env.set("os", std::env::consts::OS);
    env.set("arch", std::env::consts::ARCH);
    let rustc = env!("CATAPULT_OBS_RUSTC");
    env.set(
        "rustc",
        if rustc.is_empty() {
            Value::Null
        } else {
            Value::from(rustc)
        },
    );
    env.set("git_commit", git_commit().map_or(Value::Null, Value::from));
    env
}

/// Best-effort HEAD commit hash: walks up from the current directory to
/// the nearest `.git` and resolves `HEAD` through loose or packed refs.
#[must_use]
pub fn git_commit() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head_path = dir.join(".git").join("HEAD");
        if let Ok(head) = std::fs::read_to_string(&head_path) {
            let head = head.trim();
            let Some(reference) = head.strip_prefix("ref: ") else {
                return Some(head.to_string()); // detached HEAD
            };
            if let Ok(hash) = std::fs::read_to_string(dir.join(".git").join(reference)) {
                return Some(hash.trim().to_string());
            }
            if let Ok(packed) = std::fs::read_to_string(dir.join(".git").join("packed-refs")) {
                for line in packed.lines() {
                    if let Some(hash) = line.strip_suffix(reference) {
                        return Some(hash.trim().to_string());
                    }
                }
            }
            return None;
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Render a flat span list as a nested tree (children in creation
/// order), with human-oriented `duration_ns` instead of raw end stamps.
fn span_tree(spans: &[SpanRecord]) -> Value {
    fn node(spans: &[SpanRecord], s: &SpanRecord) -> Value {
        let mut v = Value::object();
        v.set("name", s.name);
        v.set("worker", s.worker);
        v.set("start_ns", s.start_ns);
        match s.end_ns {
            Some(_) => v.set("duration_ns", s.duration_ns()),
            None => v.set("duration_ns", Value::Null),
        };
        let mut children = Value::array();
        for c in spans.iter().filter(|c| c.parent == Some(s.id)) {
            children.push(node(spans, c));
        }
        v.set("children", children);
        v
    }
    let mut roots = Value::array();
    for s in spans.iter().filter(|s| s.parent.is_none()) {
        roots.push(node(spans, s));
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::HistogramSummary;

    fn fixed_snapshot() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanRecord {
                    name: "pipeline",
                    id: 0,
                    parent: None,
                    start_ns: 0,
                    end_ns: Some(100),
                    worker: 0,
                },
                SpanRecord {
                    name: "clustering",
                    id: 1,
                    parent: Some(0),
                    start_ns: 10,
                    end_ns: Some(60),
                    worker: 0,
                },
            ],
            counters: vec![("scoring.iso.probes".to_string(), 42)],
            histograms: vec![(
                "scoring.iso.probes_per_call".to_string(),
                HistogramSummary {
                    count: 2,
                    sum: 42,
                    p50: 31,
                    p90: 31,
                    p99: 31,
                },
            )],
        }
    }

    #[test]
    fn schema_version_is_first_field() {
        let m = RunManifest::new("select");
        let text = m.render();
        assert!(
            text.starts_with("{\n  \"schema_version\": 1,\n  \"command\": \"select\""),
            "unexpected prefix: {text}"
        );
        assert_eq!(schema_version_of(&text), Some(SCHEMA_VERSION));
    }

    #[test]
    fn span_tree_nests_children() {
        let mut m = RunManifest::new("x");
        m.attach_snapshot(&fixed_snapshot());
        let text = m.render();
        assert!(text.contains("\"name\": \"pipeline\""));
        assert!(text.contains("\"duration_ns\": 100"));
        assert!(text.contains("\"name\": \"clustering\""));
        // The child sits inside the parent's children array.
        let pipeline_at = text.find("\"pipeline\"").unwrap();
        let clustering_at = text.find("\"clustering\"").unwrap();
        assert!(clustering_at > pipeline_at);
    }

    #[test]
    fn overwrite_guard_refuses_other_schemas() {
        let dir = std::env::temp_dir().join("catapult-obs-test-guard");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");

        // Fresh path: fine.
        std::fs::remove_file(&path).ok();
        assert!(guard_overwrite(&path, false).is_ok());

        // Same schema: fine.
        RunManifest::new("a").write(&path, false).unwrap();
        assert!(guard_overwrite(&path, false).is_ok());

        // Pre-schema / foreign file: refused without force.
        std::fs::write(&path, "{\"host_threads\": 1}\n").unwrap();
        let err = guard_overwrite(&path, false);
        assert!(matches!(
            err,
            Err(ManifestError::SchemaMismatch { found: None, .. })
        ));
        assert!(guard_overwrite(&path, true).is_ok());

        // Different version: refused without force.
        std::fs::write(&path, "{\n  \"schema_version\": 999\n}\n").unwrap();
        assert!(matches!(
            guard_overwrite(&path, false),
            Err(ManifestError::SchemaMismatch {
                found: Some(999),
                ..
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn environment_reports_host_facts() {
        let env = environment(4);
        assert_eq!(env.get("threads"), Some(&Value::UInt(4)));
        assert!(env.get("os").is_some());
        assert!(env.get("git_commit").is_some());
    }
}
