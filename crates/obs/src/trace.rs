//! Human-readable rendering of a [`Snapshot`] — the `--trace` table.
//!
//! Two sections: the span tree (per-stage wall time and share of the
//! run), and a kernel-effort table (per stage: calls, probes, probes/sec,
//! budget checks, degraded calls) derived from the
//! `stage.kernel.metric` counters.

use crate::recorder::Snapshot;

/// Span names that carry a stage's kernel counters under a different
/// stage prefix (the selection loop flushes into `scoring.*`).
const STAGE_SPAN_ALIASES: &[(&str, &str)] = &[("scoring", "selection")];

/// Render the `--trace` summary table for a finished run.
///
/// Durations come from the recorded spans; rates divide each stage's
/// `probes` total by the wall time of the span carrying that stage's
/// kernels (falling back to the whole run when no such span exists).
#[must_use]
pub fn summary_table(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&span_section(snapshot));
    let kernels = kernel_section(snapshot);
    if !kernels.is_empty() {
        out.push('\n');
        out.push_str(&kernels);
    }
    out
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

fn span_section(snapshot: &Snapshot) -> String {
    let spans = &snapshot.spans;
    let total_ns: u64 = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.duration_ns())
        .sum();
    let total_ns = total_ns.max(1);

    // Depth-first walk over the parent-pointer forest, creation order.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) => children[p as usize].push(i),
            None => roots.push(i),
        }
    }
    let mut rows: Vec<(String, u64)> = Vec::new();
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        rows.push((format!("{}{}", "  ".repeat(depth), s.name), s.duration_ns()));
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1));
        }
    }

    let name_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = format!("{:<name_w$}  {:>10}  {:>6}\n", "span", "wall", "%");
    for (name, ns) in rows {
        out.push_str(&format!(
            "{:<name_w$}  {:>8.2}ms  {:>5.1}%\n",
            name,
            ms(ns),
            ns as f64 / total_ns as f64 * 100.0,
        ));
    }
    out
}

/// Wall time backing a stage's kernel counters: the span named after the
/// stage (or its alias), else the whole run.
fn stage_wall_ns(snapshot: &Snapshot, stage: &str) -> u64 {
    let alias = STAGE_SPAN_ALIASES
        .iter()
        .find(|(s, _)| *s == stage)
        .map(|(_, span)| *span)
        .unwrap_or(stage);
    let named: u64 = snapshot
        .spans
        .iter()
        .filter(|s| s.name == alias)
        .map(|s| s.duration_ns())
        .sum();
    if named > 0 {
        return named;
    }
    snapshot
        .spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.duration_ns())
        .sum()
}

fn kernel_section(snapshot: &Snapshot) -> String {
    // Stages, in first-appearance order, that recorded kernel calls.
    let mut stages: Vec<&str> = Vec::new();
    for (name, _) in &snapshot.counters {
        let parts: Vec<&str> = name.split('.').collect();
        if parts.len() == 3
            && matches!(parts[1], "iso" | "mcs" | "ged")
            && !stages.contains(&parts[0])
        {
            stages.push(parts[0]);
        }
    }
    if stages.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "{:<12}  {:>8}  {:>10}  {:>12}  {:>8}  {:>8}\n",
        "stage", "calls", "probes", "probes/sec", "checks", "degraded"
    );
    for stage in stages {
        let calls = snapshot.stage_metric_total(stage, "calls");
        let probes = snapshot.stage_metric_total(stage, "probes");
        let checks = snapshot.stage_metric_total(stage, "budget_checks");
        let degraded = snapshot.stage_metric_total(stage, "degraded");
        let wall_ns = stage_wall_ns(snapshot, stage).max(1);
        let rate = probes as f64 / (wall_ns as f64 / 1e9);
        out.push_str(&format!(
            "{:<12}  {:>8}  {:>10}  {:>12.0}  {:>8}  {:>8}\n",
            stage, calls, probes, rate, checks, degraded,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Kernel, KernelMeasurement, Recorder};

    #[test]
    fn table_lists_spans_and_kernel_stages() {
        let rec = Recorder::enabled();
        {
            let _run = rec.span("pipeline");
            let _stage = rec.span("mining");
            rec.stage_probe("mining").flush(
                Kernel::Iso,
                KernelMeasurement {
                    probes: 40,
                    checks: 4,
                    improved: 1,
                    exact: true,
                },
            );
        }
        let snap = rec.snapshot().unwrap();
        let table = summary_table(&snap);
        assert!(table.contains("pipeline"), "{table}");
        assert!(
            table.contains("  mining"),
            "missing indented child: {table}"
        );
        assert!(table.contains("probes/sec"), "{table}");
        assert!(table.contains("40"), "{table}");
    }

    #[test]
    fn empty_snapshot_renders_header_only() {
        let rec = Recorder::enabled();
        let snap = rec.snapshot().unwrap();
        let table = summary_table(&snap);
        assert!(table.starts_with("span"));
        assert!(!table.contains("probes/sec"));
    }
}
