//! Live progress heartbeat for long runs (`--progress`).
//!
//! [`ProgressMeter`] runs a background thread that periodically
//! snapshots a [`Recorder`] and prints a one-line heartbeat to
//! **stderr**: elapsed wall time, the innermost span still open (the
//! current stage), per-stage item counts from the
//! `<stage>.items.done` / `<stage>.items.total` counters pipeline
//! fan-outs maintain, the kernel probe rate since the previous tick,
//! and an ETA extrapolated from the item completion rate.
//!
//! Determinism: the meter only *reads* the recorder and writes to
//! stderr — stdout and every `--*-out` artifact are byte-identical with
//! or without it (tests/parallel_determinism.rs runs the pipeline under
//! a heartbeat to prove it). The ETA/rate arithmetic lives in pure
//! functions ([`eta_secs`], [`rate_per_sec`], [`render_line`]) so the
//! math is unit-testable without threads or clocks.

use crate::recorder::{Recorder, Snapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Completion percentage, clamped to `[0, 100]`; 0 when `total` is 0.
#[must_use]
pub fn percent(done: u64, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let pct = (done as f64 / total as f64) * 100.0;
    pct.clamp(0.0, 100.0)
}

/// Events per second over an interval; 0 for an empty interval.
#[must_use]
pub fn rate_per_sec(delta: u64, dt_secs: f64) -> f64 {
    if dt_secs <= 0.0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let r = delta as f64 / dt_secs;
    r
}

/// Estimated seconds to completion, extrapolating the observed item
/// rate: `elapsed * remaining / done`. `None` when nothing has finished
/// yet (no rate to extrapolate), the total is unknown, or the work is
/// already complete.
#[must_use]
pub fn eta_secs(done: u64, total: u64, elapsed_secs: f64) -> Option<f64> {
    if done == 0 || total == 0 || done >= total || elapsed_secs <= 0.0 {
        return None;
    }
    #[allow(clippy::cast_precision_loss)]
    let eta = elapsed_secs * ((total - done) as f64) / (done as f64);
    Some(eta)
}

/// Render seconds as a compact human duration: `42s`, `3m05s`, `2h07m`.
#[must_use]
pub fn format_secs(secs: f64) -> String {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let s = secs.max(0.0).round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

/// The innermost span still open — the pipeline's current stage.
///
/// "Innermost" = the open span opened last; recorder span ids are
/// creation-ordered, so the highest id wins.
#[must_use]
pub fn current_stage(snapshot: &Snapshot) -> Option<&'static str> {
    snapshot
        .spans
        .iter()
        .filter(|s| s.end_ns.is_none())
        .max_by_key(|s| s.id)
        .map(|s| s.name)
}

/// Item progress in scope: walk the open-span chain from the innermost
/// span outward and return the first stage with a `<stage>.items.total`
/// counter, as `(stage, done, total)`. Fan-outs attach item counters to
/// their *stage* span (`selection`, `mining`, …) while the innermost
/// open span is usually a sub-phase (`walks`, `score`), so the walk is
/// what connects the two.
#[must_use]
pub fn items_in_scope(snapshot: &Snapshot) -> Option<(&'static str, u64, u64)> {
    let mut cur = snapshot
        .spans
        .iter()
        .filter(|s| s.end_ns.is_none())
        .max_by_key(|s| s.id);
    while let Some(span) = cur {
        let total = snapshot.stage_metric_total(span.name, "total");
        if total > 0 {
            let done = snapshot.stage_metric_total(span.name, "done");
            return Some((span.name, done, total));
        }
        cur = span
            .parent
            .and_then(|p| snapshot.spans.iter().find(|s| s.id == p));
    }
    None
}

/// Sum of every `*.probes` counter — total kernel search effort so far.
#[must_use]
pub fn total_probes(snapshot: &Snapshot) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.ends_with(".probes"))
        .map(|(_, v)| v)
        .sum()
}

/// Compose one heartbeat line (without trailing newline) from a
/// snapshot. Pure — the caller supplies elapsed time and the probe rate
/// so tests can pin exact output.
#[must_use]
pub fn render_line(snapshot: &Snapshot, elapsed_secs: f64, probes_per_sec: f64) -> String {
    let mut line = format!("progress: {}", format_secs(elapsed_secs));
    line.push_str(" stage=");
    line.push_str(current_stage(snapshot).unwrap_or("idle"));
    if let Some((_, done, total)) = items_in_scope(snapshot) {
        line.push_str(&format!(
            " items={done}/{total} ({:.1}%)",
            percent(done, total)
        ));
        if let Some(eta) = eta_secs(done, total, elapsed_secs) {
            line.push_str(&format!(" eta={}", format_secs(eta)));
        }
    }
    line.push_str(&format!(" probes/sec={probes_per_sec:.0}"));
    line
}

/// How often the heartbeat thread polls its stop flag between ticks, so
/// dropping the meter never blocks for a full interval.
const STOP_POLL: Duration = Duration::from_millis(25);

/// Background stderr heartbeat; stops and joins on drop.
#[derive(Debug)]
pub struct ProgressMeter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressMeter {
    /// Start a heartbeat over `recorder`, printing every `interval`.
    ///
    /// The recorder handle is cloned (clones share the store), so the
    /// meter sees everything the pipeline records after this call.
    #[must_use]
    pub fn start(recorder: &Recorder, interval: Duration) -> ProgressMeter {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let rec = recorder.clone();
        // A plain thread, not the rayon shim: the heartbeat must tick
        // while the pool's workers are busy inside a parallel region,
        // and it outlives any single scope. Joined on drop.
        // xtask-allow: no-raw-spawn
        let handle = std::thread::spawn(move || {
            let started = crate::Stopwatch::start();
            let mut last_tick = started.elapsed();
            let mut last_probes = 0u64;
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(STOP_POLL);
                let elapsed = started.elapsed();
                if elapsed.saturating_sub(last_tick) < interval {
                    continue;
                }
                let Some(snap) = rec.snapshot() else {
                    break; // disabled recorder: nothing to report, ever
                };
                let probes = total_probes(&snap);
                let dt = elapsed.saturating_sub(last_tick).as_secs_f64();
                let pps = rate_per_sec(probes.saturating_sub(last_probes), dt);
                crate::flight::event("flight.progress.tick", "", probes);
                eprintln!("{}", render_line(&snap, elapsed.as_secs_f64(), pps));
                last_tick = elapsed;
                last_probes = probes;
            }
        });
        ProgressMeter {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for ProgressMeter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            // A panic on the heartbeat thread must not cascade into the
            // pipeline teardown; swallow the join error.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn percent_handles_edges() {
        assert_eq!(percent(0, 0), 0.0);
        assert_eq!(percent(5, 0), 0.0);
        assert_eq!(percent(0, 10), 0.0);
        assert_eq!(percent(5, 10), 50.0);
        assert_eq!(percent(10, 10), 100.0);
        assert_eq!(percent(15, 10), 100.0, "overshoot clamps");
    }

    #[test]
    fn rate_handles_zero_interval() {
        assert_eq!(rate_per_sec(100, 0.0), 0.0);
        assert_eq!(rate_per_sec(100, -1.0), 0.0);
        assert_eq!(rate_per_sec(100, 2.0), 50.0);
    }

    #[test]
    fn eta_extrapolates_item_rate() {
        assert_eq!(eta_secs(0, 10, 5.0), None, "no rate yet");
        assert_eq!(eta_secs(5, 0, 5.0), None, "unknown total");
        assert_eq!(eta_secs(10, 10, 5.0), None, "already done");
        assert_eq!(eta_secs(12, 10, 5.0), None, "overshoot");
        assert_eq!(eta_secs(5, 10, 0.0), None, "no elapsed time");
        assert_eq!(eta_secs(2, 6, 10.0), Some(20.0));
    }

    #[test]
    fn durations_format_compactly() {
        assert_eq!(format_secs(0.4), "0s");
        assert_eq!(format_secs(42.0), "42s");
        assert_eq!(format_secs(185.0), "3m05s");
        assert_eq!(format_secs(7620.0), "2h07m");
        assert_eq!(format_secs(-3.0), "0s", "negative clamps");
    }

    #[test]
    fn heartbeat_line_reports_stage_items_and_eta() {
        let rec = Recorder::enabled();
        let _outer = rec.span("pipeline");
        let _stage = rec.span("mining");
        rec.counter("mining.items.done").add(2);
        rec.counter("mining.items.total").add(6);
        rec.counter("mining.iso.probes").add(500);
        let snap = rec.snapshot().expect("snapshot");
        let line = render_line(&snap, 10.0, 123.4);
        assert_eq!(
            line,
            "progress: 10s stage=mining items=2/6 (33.3%) eta=20s probes/sec=123"
        );
    }

    #[test]
    fn heartbeat_line_without_recorded_work_is_idle() {
        let rec = Recorder::enabled();
        let snap = rec.snapshot().expect("snapshot");
        assert_eq!(
            render_line(&snap, 0.0, 0.0),
            "progress: 0s stage=idle probes/sec=0"
        );
    }

    #[test]
    fn items_found_on_an_ancestor_stage_span() {
        let rec = Recorder::enabled();
        let _stage = rec.span("selection");
        rec.counter("selection.items.done").add(3);
        rec.counter("selection.items.total").add(30);
        let _sub = rec.span("walks"); // innermost, no items of its own
        let snap = rec.snapshot().expect("snapshot");
        assert_eq!(items_in_scope(&snap), Some(("selection", 3, 30)));
        let line = render_line(&snap, 10.0, 0.0);
        assert_eq!(
            line,
            "progress: 10s stage=walks items=3/30 (10.0%) eta=1m30s probes/sec=0"
        );
    }

    #[test]
    fn stage_is_innermost_open_span() {
        let rec = Recorder::enabled();
        let _a = rec.span("pipeline");
        let closed = rec.span("clustering");
        drop(closed);
        let _b = rec.span("selection");
        let snap = rec.snapshot().expect("snapshot");
        assert_eq!(current_stage(&snap), Some("selection"));
    }

    #[test]
    fn total_probes_sums_only_probe_counters() {
        let rec = Recorder::enabled();
        rec.counter("mining.iso.probes").add(3);
        rec.counter("scoring.ged.probes").add(4);
        rec.counter("mining.iso.calls").add(99);
        let snap = rec.snapshot().expect("snapshot");
        assert_eq!(total_probes(&snap), 7);
    }

    #[test]
    fn meter_starts_ticks_and_joins_on_drop() {
        let rec = Recorder::enabled();
        let meter = ProgressMeter::start(&rec, Duration::from_millis(1));
        let _span = rec.span("pipeline");
        std::thread::sleep(Duration::from_millis(120));
        drop(meter); // must stop promptly and join without panicking
    }

    #[test]
    fn meter_on_disabled_recorder_exits_quietly() {
        let rec = Recorder::disabled();
        let meter = ProgressMeter::start(&rec, Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(60));
        drop(meter);
    }
}
