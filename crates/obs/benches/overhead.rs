//! Recorder overhead: proves "disabled ≈ no-op" with numbers.
//!
//! `cargo bench -p catapult-obs` prints median per-batch times for the
//! span and counter hot paths with the recorder disabled vs enabled.
//! The disabled numbers are the cost every un-profiled pipeline run
//! pays; they should be within noise of the empty-loop baseline.

use catapult_obs::{Kernel, KernelMeasurement, Recorder};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const BATCH: usize = 10_000;

fn bench_spans(c: &mut Criterion) {
    let mut g = c.benchmark_group("span");
    let disabled = Recorder::disabled();
    g.bench_function("disabled_x10k", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let guard = disabled.span("bench");
                black_box(&guard);
            }
        })
    });
    g.bench_function("enabled_x10k", |b| {
        b.iter(|| {
            // A fresh recorder per batch keeps the span store from
            // growing unboundedly across iterations.
            let enabled = Recorder::enabled();
            for _ in 0..BATCH {
                let guard = enabled.span("bench");
                black_box(&guard);
            }
        })
    });
    g.finish();
}

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter");
    let disabled = Recorder::disabled().counter("bench.kernel.metric");
    g.bench_function("disabled_add_x10k", |b| {
        b.iter(|| {
            for i in 0..BATCH as u64 {
                disabled.add(black_box(i));
            }
        })
    });
    let enabled_rec = Recorder::enabled();
    let enabled = enabled_rec.counter("bench.kernel.metric");
    g.bench_function("enabled_add_x10k", |b| {
        b.iter(|| {
            for i in 0..BATCH as u64 {
                enabled.add(black_box(i));
            }
        })
    });
    g.finish();
}

fn bench_probe_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_flush");
    let disabled = Recorder::disabled().stage_probe("bench");
    let m = KernelMeasurement {
        probes: 1000,
        checks: 2,
        improved: 1,
        exact: true,
    };
    g.bench_function("disabled_x10k", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                disabled.flush(Kernel::Iso, black_box(m));
            }
        })
    });
    let enabled_rec = Recorder::enabled();
    let enabled = enabled_rec.stage_probe("bench");
    g.bench_function("enabled_x10k", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                enabled.flush(Kernel::Iso, black_box(m));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_spans, bench_counters, bench_probe_flush);
criterion_main!(benches);
