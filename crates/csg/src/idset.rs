//! Compact sorted sets of graph ids.
//!
//! Closure-graph vertices and edges carry the set of member-graph indices
//! containing them (the `{i1, …, in}` annotations of Fig. 4). Clusters are
//! small (≤ N ≈ 20 graphs), so a sorted `Vec<u32>` beats any fancier
//! structure.

/// A sorted, deduplicated set of graph ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdSet(Vec<u32>);

impl IdSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Singleton set.
    pub fn singleton(id: u32) -> Self {
        IdSet(vec![id])
    }

    /// Insert `id`, keeping sorted order. Returns true if newly inserted.
    pub fn insert(&mut self, id: u32) -> bool {
        match self.0.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, id);
                true
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }

    /// Set union.
    pub fn union(&self, other: &IdSet) -> IdSet {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        IdSet(out)
    }

    /// Size of the intersection with `other`.
    pub fn intersection_len(&self, other: &IdSet) -> usize {
        let (mut i, mut j, mut c) = (0, 0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    c += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        c
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &IdSet) -> bool {
        self.intersection_len(other) == self.len()
    }

    /// Ids as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

impl FromIterator<u32> for IdSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut v: Vec<u32> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        IdSet(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_maintains_order_and_dedup() {
        let mut s = IdSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert_eq!(s.as_slice(), &[1, 5]);
        assert!(s.contains(1));
        assert!(!s.contains(2));
    }

    #[test]
    fn union_and_intersection() {
        let a: IdSet = [1, 3, 5].into_iter().collect();
        let b: IdSet = [3, 4, 5, 6].into_iter().collect();
        assert_eq!(a.union(&b).as_slice(), &[1, 3, 4, 5, 6]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_subset_of(&b));
        let c: IdSet = [3, 5].into_iter().collect();
        assert!(c.is_subset_of(&a));
    }

    #[test]
    fn from_iter_dedups() {
        let s: IdSet = [2, 2, 1, 1].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 2]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_behaviour() {
        let e = IdSet::new();
        assert!(e.is_empty());
        assert_eq!(e.union(&e), e);
        assert!(e.is_subset_of(&e));
    }
}
