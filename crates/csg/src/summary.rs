//! Cluster summary graphs (CSGs, §4.2).
//!
//! Each graph cluster is summarized into a single *closure graph* [19] by
//! folding members in one at a time: a neighbor-biased mapping aligns the
//! incoming graph with the current closure, unmatched vertices/edges extend
//! it (the dummy-extension of §2), and every closure vertex and edge tracks
//! the set of member ids containing it — the `C{1,2}`-style annotations of
//! Fig. 4. Per the paper, the vertex-closure (label-union) step is skipped:
//! only same-label vertices are merged, because edge labels derived from
//! endpoints are needed downstream.

use crate::idset::IdSet;
use crate::mapping::neighbor_biased_mapping;
use catapult_graph::{debug_invariants, EdgeId, Graph, InvariantViolation, VertexId};

/// A cluster summary graph.
#[derive(Clone, Debug)]
pub struct Csg {
    /// The closure structure (labeled graph).
    pub graph: Graph,
    /// For each closure vertex, the member ids containing it.
    pub vertex_members: Vec<IdSet>,
    /// For each closure edge, the member ids containing it.
    pub edge_members: Vec<IdSet>,
    /// The cluster's member ids (indices into the database).
    pub cluster: Vec<u32>,
    /// For each member (parallel to `cluster`), the image of its vertices
    /// in the closure — the constructive witness that the member is
    /// subgraph-isomorphic to the CSG (an explicit VF2 search on large,
    /// label-homogeneous members can be intractable; the witness makes
    /// containment checkable in O(|V| + |E|)).
    pub member_images: Vec<Vec<VertexId>>,
}

impl Csg {
    /// Build the CSG of `cluster` (ids into `db`) by iterated closure.
    ///
    /// # Panics
    /// Panics if `cluster` is empty or contains an out-of-range id.
    pub fn build(db: &[Graph], cluster: &[u32]) -> Csg {
        assert!(!cluster.is_empty(), "cannot summarize an empty cluster");
        let mut graph = Graph::new();
        let mut vertex_members: Vec<IdSet> = Vec::new();
        let mut edge_members: Vec<IdSet> = Vec::new();
        let mut member_images: Vec<Vec<VertexId>> = Vec::with_capacity(cluster.len());
        for &gid in cluster {
            let g = &db[gid as usize];
            let mapping = neighbor_biased_mapping(g, &graph);
            // Materialize unmatched vertices as new closure vertices.
            let mut image: Vec<VertexId> = Vec::with_capacity(g.vertex_count());
            for v in g.vertices() {
                let target = match mapping[v.index()] {
                    Some(u) => u,
                    None => {
                        let u = graph.add_vertex(g.label(v));
                        vertex_members.push(IdSet::new());
                        u
                    }
                };
                vertex_members[target.index()].insert(gid);
                image.push(target);
            }
            // Fold edges.
            for (_, e) in g.edges() {
                let (a, b) = (image[e.u.index()], image[e.v.index()]);
                match graph.find_edge(a, b) {
                    Some(eid) => {
                        edge_members[eid.index()].insert(gid);
                    }
                    None => {
                        // `find_edge` ruled out a duplicate and the mapping
                        // is injective (`a != b`), so the insert cannot fail.
                        if let Ok(eid) = graph.add_edge(a, b) {
                            debug_assert_eq!(eid.index(), edge_members.len());
                            edge_members.push(IdSet::singleton(gid));
                        }
                    }
                }
            }
            member_images.push(image);
        }
        let csg = Csg {
            graph,
            vertex_members,
            edge_members,
            cluster: cluster.to_vec(),
            member_images,
        };
        debug_invariants!(csg.validate(db));
        csg
    }

    /// The stored embedding witness of member `gid` (closure vertex per
    /// member vertex), if `gid` belongs to this cluster.
    pub fn member_embedding(&self, gid: u32) -> Option<&[VertexId]> {
        self.cluster
            .iter()
            .position(|&g| g == gid)
            .map(|i| self.member_images[i].as_slice())
    }

    /// Verify the stored witnesses: every member's image must be an
    /// injective, label- and edge-preserving map into the closure.
    pub fn verify_members(&self, db: &[Graph]) -> bool {
        self.cluster
            .iter()
            .zip(&self.member_images)
            .all(|(&gid, image)| {
                let g = &db[gid as usize];
                if image.len() != g.vertex_count() {
                    return false;
                }
                let mut seen = std::collections::HashSet::new();
                for v in g.vertices() {
                    let t = image[v.index()];
                    if !seen.insert(t) || self.graph.label(t) != g.label(v) {
                        return false;
                    }
                }
                g.edges()
                    .all(|(_, e)| self.graph.has_edge(image[e.u.index()], image[e.v.index()]))
            })
    }

    /// Check every structural invariant of the summary:
    ///
    /// * the closure graph itself is well-formed ([`Graph::validate`]);
    /// * the member-set tables are parallel to the closure's vertex and
    ///   edge tables, and the witness table is parallel to `cluster`;
    /// * every id in a member set belongs to `cluster`;
    /// * every stored witness is an injective, label- and edge-preserving
    ///   embedding of its member into the closure, and every vertex/edge
    ///   it touches records that member in its member set.
    ///
    /// Run automatically after [`Csg::build`] via
    /// [`catapult_graph::debug_invariants!`].
    pub fn validate(&self, db: &[Graph]) -> Result<(), InvariantViolation> {
        self.graph.validate()?;
        if self.vertex_members.len() != self.graph.vertex_count() {
            return Err(InvariantViolation::new(format!(
                "{} vertex member-sets for {} closure vertices",
                self.vertex_members.len(),
                self.graph.vertex_count()
            )));
        }
        if self.edge_members.len() != self.graph.edge_count() {
            return Err(InvariantViolation::new(format!(
                "{} edge member-sets for {} closure edges",
                self.edge_members.len(),
                self.graph.edge_count()
            )));
        }
        if self.member_images.len() != self.cluster.len() {
            return Err(InvariantViolation::new(format!(
                "{} member witnesses for {} cluster members",
                self.member_images.len(),
                self.cluster.len()
            )));
        }
        for (what, sets) in [
            ("vertex", &self.vertex_members),
            ("edge", &self.edge_members),
        ] {
            for (i, set) in sets.iter().enumerate() {
                if let Some(stranger) = set.iter().find(|id| !self.cluster.contains(id)) {
                    return Err(InvariantViolation::new(format!(
                        "{what} {i} member-set contains id {stranger} outside the cluster"
                    )));
                }
            }
        }
        for (&gid, image) in self.cluster.iter().zip(&self.member_images) {
            let Some(g) = db.get(gid as usize) else {
                return Err(InvariantViolation::new(format!(
                    "cluster member {gid} is outside the database (|D| = {})",
                    db.len()
                )));
            };
            if image.len() != g.vertex_count() {
                return Err(InvariantViolation::new(format!(
                    "witness of member {gid} maps {} of {} vertices",
                    image.len(),
                    g.vertex_count()
                )));
            }
            let mut seen = std::collections::HashSet::new();
            for v in g.vertices() {
                let t = image[v.index()];
                if t.index() >= self.graph.vertex_count() {
                    return Err(InvariantViolation::new(format!(
                        "witness of member {gid} maps {v:?} to out-of-bounds {t:?}"
                    )));
                }
                if !seen.insert(t) {
                    return Err(InvariantViolation::new(format!(
                        "witness of member {gid} is not injective at {t:?}"
                    )));
                }
                if self.graph.label(t) != g.label(v) {
                    return Err(InvariantViolation::new(format!(
                        "witness of member {gid} changes the label of {v:?}"
                    )));
                }
                if !self.vertex_members[t.index()].contains(gid) {
                    return Err(InvariantViolation::new(format!(
                        "closure vertex {t:?} omits member {gid} from its member set"
                    )));
                }
            }
            for (_, e) in g.edges() {
                let (a, b) = (image[e.u.index()], image[e.v.index()]);
                let Some(eid) = self.graph.find_edge(a, b) else {
                    return Err(InvariantViolation::new(format!(
                        "witness of member {gid} drops edge {:?}-{:?}",
                        e.u, e.v
                    )));
                };
                if !self.edge_members[eid.index()].contains(gid) {
                    return Err(InvariantViolation::new(format!(
                        "closure edge {eid:?} omits member {gid} from its member set"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of member graphs summarized.
    pub fn cluster_size(&self) -> usize {
        self.cluster.len()
    }

    /// Member-id set supporting edge `e`.
    pub fn edge_support(&self, e: EdgeId) -> &IdSet {
        &self.edge_members[e.index()]
    }

    /// CSG compactness `ξ_t = |E_t| / |E_CSG|` where `E_t` are edges
    /// contained in at least `t × |C|` member graphs (§6.1).
    pub fn compactness(&self, t: f64) -> f64 {
        let total = self.graph.edge_count();
        if total == 0 {
            return 0.0;
        }
        let needed = (t * self.cluster_size() as f64).ceil().max(1.0) as usize;
        let compact = self
            .edge_members
            .iter()
            .filter(|m| m.len() >= needed)
            .count();
        compact as f64 / total as f64
    }
}

/// Build a CSG per cluster (§4.2; Algorithm 1 line 3).
pub fn build_csgs(db: &[Graph], clusters: &[Vec<u32>]) -> Vec<Csg> {
    build_csgs_recorded(db, clusters, &catapult_obs::Recorder::disabled())
}

/// [`build_csgs`] under an observability [`Recorder`]: wraps the build in
/// a `csg_build` span and reports summary sizes as `csg.build.*` counters
/// (clusters summarized, closure vertices/edges, members covered).
///
/// [`Recorder`]: catapult_obs::Recorder
pub fn build_csgs_recorded(
    db: &[Graph],
    clusters: &[Vec<u32>],
    recorder: &catapult_obs::Recorder,
) -> Vec<Csg> {
    let _span = recorder.span("csg_build");
    let csgs: Vec<Csg> = clusters
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| Csg::build(db, c))
        .collect();
    if recorder.is_enabled() {
        recorder
            .counter("csg.build.clusters")
            .add(csgs.len() as u64);
        recorder
            .counter("csg.build.vertices")
            .add(csgs.iter().map(|c| c.graph.vertex_count() as u64).sum());
        recorder
            .counter("csg.build.edges")
            .add(csgs.iter().map(|c| c.graph.edge_count() as u64).sum());
        recorder
            .counter("csg.build.members")
            .add(csgs.iter().map(|c| c.cluster.len() as u64).sum());
    }
    csgs
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::iso::contains;
    use catapult_graph::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    /// The Fig. 4 example: G1 = O-C-S triangle-ish path set, G2 adds N.
    /// G1: C-O, C-S, O-S  (triangle C,O,S)
    /// G2: C-O, C-S, O-S?, N... simplified to test the member-set logic.
    fn fig4_like() -> Vec<Graph> {
        // G1: C(0)-O(1), C(0)-S(2), O(1)-S(2)
        let g1 = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (0, 2), (1, 2)]);
        // G2: C-O, C-S, C-N (star)
        let g2 = Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (0, 2), (0, 3)]);
        vec![g1, g2]
    }

    #[test]
    fn members_tracked_per_edge() {
        let db = fig4_like();
        let csg = Csg::build(&db, &[0, 1]);
        // Closure: C,O,S,N; edges C-O{0,1}, C-S{0,1}, O-S{0}, C-N{1}.
        assert_eq!(csg.graph.vertex_count(), 4);
        assert_eq!(csg.graph.edge_count(), 4);
        let mut by_support: Vec<usize> = csg.edge_members.iter().map(IdSet::len).collect();
        by_support.sort_unstable();
        assert_eq!(by_support, vec![1, 1, 2, 2]);
    }

    #[test]
    fn every_member_embeds_into_its_csg() {
        let db = fig4_like();
        let csg = Csg::build(&db, &[0, 1]);
        for g in &db {
            assert!(contains(&csg.graph, g), "member not contained in CSG");
        }
    }

    #[test]
    fn identical_members_fold_to_one_copy() {
        let g = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        let db = vec![g.clone(), g.clone(), g];
        let csg = Csg::build(&db, &[0, 1, 2]);
        assert_eq!(csg.graph.vertex_count(), 2);
        assert_eq!(csg.graph.edge_count(), 1);
        assert_eq!(csg.edge_members[0].len(), 3);
        assert!((csg.compactness(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compactness_monotone_in_t() {
        let db = fig4_like();
        let csg = Csg::build(&db, &[0, 1]);
        let x04 = csg.compactness(0.4);
        let x05 = csg.compactness(0.5);
        let x10 = csg.compactness(1.0);
        assert!(x04 >= x05 && x05 >= x10);
        // t=1.0 keeps only edges in both graphs: 2 of 4.
        assert!((x10 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vertex_members_cover_cluster() {
        let db = fig4_like();
        let csg = Csg::build(&db, &[0, 1]);
        // C, O, S are in both; N only in G2.
        let sizes: Vec<usize> = csg.vertex_members.iter().map(IdSet::len).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 3);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 1);
    }

    #[test]
    fn build_csgs_skips_empty_clusters() {
        let db = fig4_like();
        let csgs = build_csgs(&db, &[vec![0], vec![], vec![1]]);
        assert_eq!(csgs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_panics() {
        let db = fig4_like();
        Csg::build(&db, &[]);
    }

    #[test]
    fn validate_accepts_built_csgs() {
        let db = fig4_like();
        let csg = Csg::build(&db, &[0, 1]);
        assert!(csg.validate(&db).is_ok());
    }

    #[test]
    fn validate_rejects_truncated_member_tables() {
        let db = fig4_like();
        let mut csg = Csg::build(&db, &[0, 1]);
        csg.vertex_members.pop();
        assert!(csg.validate(&db).is_err(), "missing vertex member-set");

        let mut csg = Csg::build(&db, &[0, 1]);
        csg.edge_members.pop();
        assert!(csg.validate(&db).is_err(), "missing edge member-set");
    }

    #[test]
    fn validate_rejects_corrupted_witness() {
        let db = fig4_like();
        // Point one witness vertex at the wrong (differently labeled)
        // closure vertex: no longer label-preserving.
        let mut csg = Csg::build(&db, &[0, 1]);
        csg.member_images[0][0] = csg.member_images[0][1];
        assert!(csg.validate(&db).is_err(), "non-injective witness accepted");
    }

    #[test]
    fn validate_rejects_stale_member_sets() {
        let db = fig4_like();
        let mut csg = Csg::build(&db, &[0, 1]);
        // Forget that member 0 uses closure vertex 0.
        csg.vertex_members[0] = IdSet::singleton(1);
        assert!(csg.validate(&db).is_err(), "stale member set accepted");
    }

    #[test]
    fn validate_rejects_foreign_member_ids() {
        let db = fig4_like();
        let mut csg = Csg::build(&db, &[0, 1]);
        csg.edge_members[0].insert(99);
        assert!(csg.validate(&db).is_err(), "foreign id accepted");
    }
}
