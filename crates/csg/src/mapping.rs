//! Graph mapping for closure construction (§2, [19]).
//!
//! Integrating a data graph into a growing closure graph requires a vertex
//! mapping φ where mapped vertices share labels and unmapped vertices
//! become dummy-extended (new) vertices. Exact optimal mapping is itself an
//! MCS-hard problem, so — like Closure-tree's neighbor-biased mapping [19]
//! — we use a greedy heuristic: vertices are matched to same-label closure
//! vertices, preferring candidates adjacent to already-matched neighbors
//! (maximizing preserved edges), with deterministic tie-breaking.

use catapult_graph::{Graph, InvariantViolation, VertexId};

/// Greedy neighbor-biased mapping of `g`'s vertices onto `closure`'s.
///
/// Returns, per `g`-vertex, `Some(closure vertex)` for matched vertices
/// (labels equal, injective) or `None` for vertices that must be added to
/// the closure as new (dummy-extended) vertices.
pub fn neighbor_biased_mapping(g: &Graph, closure: &Graph) -> Vec<Option<VertexId>> {
    let n = g.vertex_count();
    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    let mut used = vec![false; closure.vertex_count()];
    let mut decided = vec![false; n];

    // Process vertices in descending degree order (hubs first), but
    // dynamically prefer vertices with already-mapped neighbors so the
    // mapping grows connected regions.
    for _ in 0..n {
        // Pick the next undecided vertex: most mapped neighbors, then
        // highest degree, then lowest id.
        // Exactly one vertex is decided per iteration of the outer `0..n`
        // loop, so an undecided vertex always remains; breaking keeps the
        // mapping heuristic panic-free.
        let Some(v) = g
            .vertices()
            .filter(|&v| !decided[v.index()])
            .max_by_key(|&v| {
                let mapped_nbrs = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&(w, _)| mapping[w.index()].is_some())
                    .count();
                (mapped_nbrs, g.degree(v), std::cmp::Reverse(v.0))
            })
        else {
            break;
        };
        decided[v.index()] = true;

        // Candidate closure vertices: same label, unused; score by number
        // of preserved edges to already-mapped neighbors.
        let best = closure
            .vertices()
            .filter(|&u| !used[u.index()] && closure.label(u) == g.label(v))
            .map(|u| {
                let preserved = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&(w, _)| mapping[w.index()].is_some_and(|m| closure.has_edge(m, u)))
                    .count();
                (preserved, std::cmp::Reverse(u.0), u)
            })
            .max();
        if let Some((_, _, u)) = best {
            mapping[v.index()] = Some(u);
            used[u.index()] = true;
        }
    }
    catapult_graph::debug_invariants!(validate_mapping(g, closure, &mapping));
    mapping
}

/// Check that `mapping` is a well-formed partial embedding of `g` into
/// `closure`: one entry per `g`-vertex, matched targets in bounds,
/// injective, and label-preserving.
pub fn validate_mapping(
    g: &Graph,
    closure: &Graph,
    mapping: &[Option<VertexId>],
) -> Result<(), InvariantViolation> {
    if mapping.len() != g.vertex_count() {
        return Err(InvariantViolation::new(format!(
            "mapping covers {} of {} source vertices",
            mapping.len(),
            g.vertex_count()
        )));
    }
    let mut seen = std::collections::HashSet::new();
    for (i, target) in mapping.iter().enumerate() {
        let Some(u) = *target else { continue };
        if u.index() >= closure.vertex_count() {
            return Err(InvariantViolation::new(format!(
                "mapping sends v{i} to out-of-bounds {u:?} (closure |V| = {})",
                closure.vertex_count()
            )));
        }
        if !seen.insert(u) {
            return Err(InvariantViolation::new(format!(
                "mapping is not injective: {u:?} is the image of two vertices"
            )));
        }
        if closure.label(u) != g.label(VertexId(i as u32)) {
            return Err(InvariantViolation::new(format!(
                "mapping sends v{i} to {u:?} with a different label"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    #[test]
    fn identical_graphs_map_fully() {
        let g = Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (1, 2)]);
        let m = neighbor_biased_mapping(&g, &g);
        assert!(m.iter().all(Option::is_some));
        // Labels are distinct so the mapping must be the identity.
        for (i, mapped) in m.iter().enumerate() {
            assert_eq!(mapped.unwrap().0, i as u32);
        }
    }

    #[test]
    fn label_mismatch_leaves_vertex_unmapped() {
        let g = Graph::from_parts(&[l(0), l(9)], &[(0, 1)]);
        let closure = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        let m = neighbor_biased_mapping(&g, &closure);
        assert!(m[0].is_some());
        assert!(m[1].is_none());
    }

    #[test]
    fn mapping_is_injective() {
        // Two C vertices in g; closure has only one C.
        let g = Graph::from_parts(&[l(0), l(0), l(1)], &[(0, 2), (1, 2)]);
        let closure = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        let m = neighbor_biased_mapping(&g, &closure);
        let mapped: Vec<VertexId> = m.iter().flatten().copied().collect();
        let mut dedup = mapped.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(mapped.len(), dedup.len());
        assert_eq!(mapped.len(), 2); // one C and the O
    }

    #[test]
    fn prefers_edge_preserving_candidates() {
        // g: O-C. closure: C-O plus a second isolated O. The O adjacent to C
        // should be chosen.
        let g = Graph::from_parts(&[l(1), l(0)], &[(0, 1)]); // O(0)-C(1)
        let closure = Graph::from_parts(&[l(0), l(1), l(1)], &[(0, 1)]); // C-O, O
        let m = neighbor_biased_mapping(&g, &closure);
        // g's C maps to closure 0; g's O should map to closure 1 (adjacent),
        // not the isolated closure 2.
        assert_eq!(m[1], Some(VertexId(0)));
        assert_eq!(m[0], Some(VertexId(1)));
    }

    #[test]
    fn empty_closure_maps_nothing() {
        let g = Graph::from_parts(&[l(0)], &[]);
        let m = neighbor_biased_mapping(&g, &Graph::new());
        assert_eq!(m, vec![None]);
    }
}
