//! # catapult-csg
//!
//! Cluster summary graphs for the CATAPULT reproduction (§2, §4.2, §5):
//!
//! * [`idset`] — compact member-id sets (the `{i1,…,in}` annotations of
//!   Fig. 4);
//! * [`mapping`] — greedy neighbor-biased graph mapping [19];
//! * [`summary`] — closure-graph construction and CSG compactness `ξ_t`;
//! * [`weights`] — cluster weights `cw`, edge-label weights `elw`, and the
//!   weighted CSGs that drive the §5 random walks.

// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![warn(missing_docs)]
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod idset;
pub mod mapping;
pub mod summary;
pub mod weights;

pub use idset::IdSet;
pub use summary::{build_csgs, build_csgs_recorded, Csg};
pub use weights::{ClusterWeights, EdgeLabelWeights, WeightedCsg, WEIGHT_DAMPING};
