//! # catapult-csg
//!
//! Cluster summary graphs for the CATAPULT reproduction (§2, §4.2, §5):
//!
//! * [`idset`] — compact member-id sets (the `{i1,…,in}` annotations of
//!   Fig. 4);
//! * [`mapping`] — greedy neighbor-biased graph mapping [19];
//! * [`summary`] — closure-graph construction and CSG compactness `ξ_t`;
//! * [`weights`] — cluster weights `cw`, edge-label weights `elw`, and the
//!   weighted CSGs that drive the §5 random walks.

#![warn(missing_docs)]

pub mod idset;
pub mod mapping;
pub mod summary;
pub mod weights;

pub use idset::IdSet;
pub use summary::{build_csgs, Csg};
pub use weights::{ClusterWeights, EdgeLabelWeights, WeightedCsg, WEIGHT_DAMPING};
