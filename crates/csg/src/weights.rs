//! Cluster weights (`cw`), edge-label weights (`elw`) and weighted CSGs
//! (§3.3, §5).
//!
//! * `cw_i = |C_i| / |D|` measures cluster importance; patterns derived
//!   from heavy CSGs are likelier to achieve high coverage.
//! * `elw(e) = lcov(e, D)` is the global occurrence of the labeled edge.
//! * A weighted CSG assigns each closure edge
//!   `w_e = lcov(e, D) × lcov(e, C)` — global × local label coverage —
//!   which seeds and steers the §5 random walks.
//! * After a pattern is selected, both weight families are damped with the
//!   multiplicative-weights update `w' = (1 − n) · w`, `n = 0.5` [2].

use crate::summary::Csg;
use catapult_graph::{EdgeId, EdgeLabel, Graph};
use catapult_mining::edges::EdgeLabelStats;
use std::collections::HashMap;

/// The multiplicative-weights damping factor `n` (paper uses 0.5 per [2]).
pub const WEIGHT_DAMPING: f64 = 0.5;

/// Per-cluster importance weights `cw`.
#[derive(Clone, Debug)]
pub struct ClusterWeights {
    weights: Vec<f64>,
}

impl ClusterWeights {
    /// `cw_i = |C_i| / |D|` (§3.3). `db_size` is `|D|`.
    pub fn new(csgs: &[Csg], db_size: usize) -> Self {
        let weights = csgs
            .iter()
            .map(|c| {
                if db_size == 0 {
                    0.0
                } else {
                    c.cluster_size() as f64 / db_size as f64
                }
            })
            .collect();
        ClusterWeights { weights }
    }

    /// Weight of cluster `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Damp the weight of cluster `i`: `w' = (1 − n) w` (§5).
    pub fn damp(&mut self, i: usize) {
        self.weights[i] *= 1.0 - WEIGHT_DAMPING;
    }
}

/// Per-edge-label weights `elw`.
#[derive(Clone, Debug)]
pub struct EdgeLabelWeights {
    weights: HashMap<EdgeLabel, f64>,
    stats: EdgeLabelStats,
}

impl EdgeLabelWeights {
    /// Initialize from database statistics: `elw(e) = lcov(e, D)`.
    pub fn new(stats: EdgeLabelStats) -> Self {
        let weights = stats
            .labels()
            .into_iter()
            .map(|el| (el, stats.lcov(el)))
            .collect();
        EdgeLabelWeights { weights, stats }
    }

    /// Current weight of an edge label (0 for labels absent from `D`).
    pub fn get(&self, el: EdgeLabel) -> f64 {
        self.weights.get(&el).copied().unwrap_or(0.0)
    }

    /// The (immutable) original global coverage `lcov(e, D)`.
    pub fn lcov(&self, el: EdgeLabel) -> f64 {
        self.stats.lcov(el)
    }

    /// Damp the weight of every edge label occurring in `pattern` (§5).
    pub fn damp_pattern(&mut self, pattern: &Graph) {
        for el in pattern.edge_label_set() {
            if let Some(w) = self.weights.get_mut(&el) {
                *w *= 1.0 - WEIGHT_DAMPING;
            }
        }
    }

    /// Underlying database-wide statistics.
    pub fn stats(&self) -> &EdgeLabelStats {
        &self.stats
    }
}

/// A CSG with per-edge random-walk weights (§5, "weighted CSG").
#[derive(Clone, Debug)]
pub struct WeightedCsg<'a> {
    /// The summarized cluster.
    pub csg: &'a Csg,
    /// `w_e = elw(e) × lcov(e, C)` per closure edge, where the *current*
    /// (possibly damped) `elw` supplies the global part.
    pub edge_weights: Vec<f64>,
}

impl<'a> WeightedCsg<'a> {
    /// Compute edge weights from the current `elw` (Algorithm 4 line 2;
    /// recomputed per iteration because `elw` is damped between patterns).
    pub fn new(csg: &'a Csg, elw: &EdgeLabelWeights) -> Self {
        let n = csg.cluster_size() as f64;
        let edge_weights = csg
            .graph
            .edges()
            .map(|(eid, _)| {
                let el = csg.graph.edge_label(eid);
                // Local coverage: members containing this labeled edge. The
                // closure may hold several parallel copies of one label;
                // support of this structural edge is what we track.
                let local = csg.edge_support(eid).len() as f64 / n;
                elw.get(el) * local
            })
            .collect();
        WeightedCsg { csg, edge_weights }
    }

    /// The edge with the largest weight — the random-walk *seed edge*.
    /// Deterministic tie-break on edge id.
    pub fn seed_edge(&self) -> Option<EdgeId> {
        self.edge_weights
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_finite())
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Weight of edge `e`.
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.edge_weights[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::build_csgs;
    use catapult_graph::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn db() -> Vec<Graph> {
        vec![
            Graph::from_parts(&[l(0), l(1), l(2)], &[(0, 1), (0, 2), (1, 2)]),
            Graph::from_parts(&[l(0), l(1), l(2), l(3)], &[(0, 1), (0, 2), (0, 3)]),
            Graph::from_parts(&[l(0), l(1)], &[(0, 1)]),
        ]
    }

    #[test]
    fn cluster_weights_are_fractions() {
        let db = db();
        let csgs = build_csgs(&db, &[vec![0, 1], vec![2]]);
        let cw = ClusterWeights::new(&csgs, db.len());
        assert!((cw.get(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cw.get(1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn damping_halves() {
        let db = db();
        let csgs = build_csgs(&db, &[vec![0, 1], vec![2]]);
        let mut cw = ClusterWeights::new(&csgs, db.len());
        cw.damp(0);
        assert!((cw.get(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn elw_matches_lcov_and_damps() {
        let db = db();
        let stats = EdgeLabelStats::from_graphs(&db);
        let mut elw = EdgeLabelWeights::new(stats);
        let co = EdgeLabel::new(l(0), l(1));
        assert!((elw.get(co) - 1.0).abs() < 1e-12); // C-O in all 3 graphs
        let pattern = Graph::from_parts(&[l(0), l(1)], &[(0, 1)]);
        elw.damp_pattern(&pattern);
        assert!((elw.get(co) - 0.5).abs() < 1e-12);
        // lcov stays fixed even after damping.
        assert!((elw.lcov(co) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_csg_seed_is_heaviest() {
        let db = db();
        let csgs = build_csgs(&db, &[vec![0, 1]]);
        let elw = EdgeLabelWeights::new(EdgeLabelStats::from_graphs(&db));
        let w = WeightedCsg::new(&csgs[0], &elw);
        let seed = w.seed_edge().unwrap();
        // The C-O closure edge is in both cluster members and all 3 graphs:
        // weight 1.0 × 1.0; strictly heaviest.
        let el = csgs[0].graph.edge_label(seed);
        assert_eq!(el, EdgeLabel::new(l(0), l(1)));
        for (eid, _) in csgs[0].graph.edges() {
            assert!(w.weight(seed) >= w.weight(eid));
        }
    }

    #[test]
    fn unknown_label_weight_zero() {
        let db = db();
        let elw = EdgeLabelWeights::new(EdgeLabelStats::from_graphs(&db));
        assert_eq!(elw.get(EdgeLabel::new(l(7), l(8))), 0.0);
    }
}
