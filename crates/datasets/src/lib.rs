//! # catapult-datasets
//!
//! Synthetic data-graph repositories and query workloads for the CATAPULT
//! reproduction.
//!
//! The paper's AIDS / PubChem / eMolecules compound files are not
//! redistributable; [`molecules`] generates seeded molecule-like labeled
//! graphs reproducing the structural regimes the algorithms exploit
//! (rings, chains, functional groups, skewed label distribution), and
//! [`queries`] draws the §6.1 random-connected-subgraph workloads plus the
//! Exp-9 frequent/infrequent mixes.

#![warn(missing_docs)]

pub mod molecules;
pub mod queries;

pub use molecules::{
    aids_profile, emol_profile, generate, pubchem_profile, MoleculeDb, MoleculeProfile,
};
pub use queries::{mixed_queries, random_queries, support_fraction};
