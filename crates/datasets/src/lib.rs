//! # catapult-datasets
//!
//! Synthetic data-graph repositories and query workloads for the CATAPULT
//! reproduction.
//!
//! The paper's AIDS / PubChem / eMolecules compound files are not
//! redistributable; [`molecules`] generates seeded molecule-like labeled
//! graphs reproducing the structural regimes the algorithms exploit
//! (rings, chains, functional groups, skewed label distribution), and
//! [`queries`] draws the §6.1 random-connected-subgraph workloads plus the
//! Exp-9 frequent/infrequent mixes.

// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![warn(missing_docs)]
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod molecules;
pub mod queries;

pub use molecules::{
    aids_profile, emol_profile, generate, pubchem_profile, MoleculeDb, MoleculeProfile,
};
pub use queries::{mixed_queries, random_queries, support_fraction};
