//! Query workload generation (§6.1, Exp 9).
//!
//! * [`random_queries`] — the paper's standard workload: subgraph queries
//!   drawn as random connected subgraphs of random data graphs, sizes in a
//!   given edge range (the paper uses 1000 queries of size [4, 40]).
//! * [`mixed_queries`] — Exp 9's `Q_x` workloads, where a fraction `x` of
//!   the queries are *infrequent* (support below a threshold) and the rest
//!   frequent. Real users pose both kinds (§3.3), which is exactly what the
//!   frequent-subgraph baseline fails on.

use catapult_graph::iso::contains;
use catapult_graph::random::random_connected_subgraph;
use catapult_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw `count` random connected subgraph queries with edge counts in
/// `size_range` (inclusive), per §6.1.
pub fn random_queries(
    db: &[Graph],
    count: usize,
    size_range: (usize, usize),
    seed: u64,
) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    if db.is_empty() {
        return out;
    }
    let mut guard = 0usize;
    while out.len() < count && guard < count * 50 {
        guard += 1;
        let g = &db[rng.gen_range(0..db.len())];
        let target = rng.gen_range(size_range.0..=size_range.1);
        if let Some(q) = random_connected_subgraph(g, target, &mut rng) {
            if q.edge_count() >= size_range.0 {
                out.push(q);
            }
        }
    }
    out
}

/// Estimate the support fraction of `q` in `db`, testing at most
/// `sample_cap` graphs (uniformly strided) for tractability.
pub fn support_fraction(db: &[Graph], q: &Graph, sample_cap: usize) -> f64 {
    if db.is_empty() {
        return 0.0;
    }
    let stride = (db.len() / sample_cap.max(1)).max(1);
    let sampled: Vec<&Graph> = db.iter().step_by(stride).collect();
    let hits = sampled.iter().filter(|g| contains(g, q)).count();
    hits as f64 / sampled.len() as f64
}

/// Exp 9 workload: `total` queries of which fraction `x` are infrequent
/// (support < `support_threshold`) and `1 − x` frequent.
///
/// Queries are drawn like [`random_queries`] and classified by sampled
/// support; generation stops early (returning fewer queries) if one of the
/// classes cannot be filled within the attempt budget.
pub fn mixed_queries(
    db: &[Graph],
    total: usize,
    x_infrequent: f64,
    support_threshold: f64,
    size_range: (usize, usize),
    seed: u64,
) -> Vec<Graph> {
    assert!((0.0..=1.0).contains(&x_infrequent));
    let want_infrequent = (total as f64 * x_infrequent).round() as usize;
    let want_frequent = total - want_infrequent;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut frequent = Vec::new();
    let mut infrequent = Vec::new();
    let mut guard = 0usize;
    if db.is_empty() {
        return Vec::new();
    }
    while (frequent.len() < want_frequent || infrequent.len() < want_infrequent)
        && guard < total * 200
    {
        guard += 1;
        let g = &db[rng.gen_range(0..db.len())];
        let target = rng.gen_range(size_range.0..=size_range.1);
        let Some(q) = random_connected_subgraph(g, target, &mut rng) else {
            continue;
        };
        if q.edge_count() < size_range.0 {
            continue;
        }
        let sup = support_fraction(db, &q, 200);
        if sup >= support_threshold {
            if frequent.len() < want_frequent {
                frequent.push(q);
            }
        } else if infrequent.len() < want_infrequent {
            infrequent.push(q);
        }
    }
    // Interleave deterministically.
    let mut out = frequent;
    out.extend(infrequent);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules::{aids_profile, generate};
    use catapult_graph::components::is_connected;

    #[test]
    fn random_queries_are_connected_subgraphs() {
        let db = generate(&aids_profile(), 30, 2).graphs;
        let qs = random_queries(&db, 40, (4, 12), 9);
        assert_eq!(qs.len(), 40);
        for q in &qs {
            assert!(is_connected(q));
            assert!((4..=12).contains(&q.edge_count()));
            assert!(db.iter().any(|g| contains(g, q)), "query not from db");
        }
    }

    #[test]
    fn support_fraction_bounds() {
        let db = generate(&aids_profile(), 20, 3).graphs;
        // A single C-C edge is essentially universal.
        let mut interner = catapult_graph::LabelInterner::new();
        let c = interner.intern("C");
        let edge = Graph::from_parts(&[c, c], &[(0, 1)]);
        let s = support_fraction(&db, &edge, 100);
        assert!(s > 0.8, "C-C support {s}");
        // An implausible all-Br triangle never occurs.
        let br = catapult_graph::Label(7);
        let tri = Graph::from_parts(&[br; 3], &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(support_fraction(&db, &tri, 100), 0.0);
    }

    #[test]
    fn mixed_queries_hit_requested_fractions() {
        let db = generate(&aids_profile(), 40, 4).graphs;
        let total = 20;
        let qs = mixed_queries(&db, total, 0.5, 0.2, (4, 10), 11);
        assert!(!qs.is_empty());
        // Re-classify and check the mix is near the request (generation can
        // fall short on one class; tolerate slack).
        let infrequent = qs
            .iter()
            .filter(|q| support_fraction(&db, q, 200) < 0.2)
            .count();
        assert!(
            infrequent >= qs.len() / 4,
            "too few infrequent: {infrequent}"
        );
    }

    #[test]
    fn x_zero_gives_frequent_only() {
        let db = generate(&aids_profile(), 40, 5).graphs;
        let qs = mixed_queries(&db, 10, 0.0, 0.15, (4, 8), 13);
        for q in &qs {
            assert!(support_fraction(&db, q, 200) >= 0.15);
        }
    }

    #[test]
    fn empty_db() {
        assert!(random_queries(&[], 5, (4, 8), 1).is_empty());
        assert!(mixed_queries(&[], 5, 0.5, 0.1, (4, 8), 1).is_empty());
    }
}
