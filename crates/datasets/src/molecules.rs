//! Synthetic molecule-like graph generator.
//!
//! The paper evaluates on AIDS antiviral, PubChem, and eMolecules compound
//! repositories, which are not redistributable here. This generator
//! produces labeled graphs with the structural regimes CATAPULT exploits:
//! recurring ring systems (3–8-cycles, occasionally fused), carbon chains,
//! and functional-group motifs (urea, carboxyl, amine, thiol, halides) over
//! a skewed element-label distribution (C ≫ O, N > S, Cl, …). See
//! DESIGN.md §3 for the substitution rationale.
//!
//! All generation is deterministic given a seed.

use catapult_graph::{Graph, Label, LabelInterner, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fixed element alphabet, interned in this order.
pub const ELEMENTS: [&str; 8] = ["C", "N", "O", "S", "Cl", "F", "P", "Br"];

/// Sampling weights for hetero-atoms (index 1.. of [`ELEMENTS`]).
const HETERO_WEIGHTS: [f64; 7] = [0.32, 0.38, 0.12, 0.08, 0.05, 0.03, 0.02];

/// A generated repository: graphs plus the shared label interner.
#[derive(Clone, Debug)]
pub struct MoleculeDb {
    /// The data graphs.
    pub graphs: Vec<Graph>,
    /// Interner mapping element symbols to the labels used in `graphs`.
    pub interner: LabelInterner,
}

impl MoleculeDb {
    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

/// Structural knobs for a synthetic repository.
#[derive(Clone, Copy, Debug)]
pub struct MoleculeProfile {
    /// Dataset name used in reports.
    pub name: &'static str,
    /// Target molecule size range in edges (inclusive).
    pub edge_range: (usize, usize),
    /// Probability that a grown motif is a ring (vs a chain).
    pub ring_probability: f64,
    /// Probability that a new ring fuses with an existing one (shares an
    /// edge) rather than attaching by a single bond.
    pub fusion_probability: f64,
    /// Probability that any grown atom is a hetero-atom instead of carbon.
    pub hetero_rate: f64,
    /// Probability of decorating the molecule with a functional-group
    /// motif per growth step.
    pub functional_group_rate: f64,
}

/// AIDS-antiviral-like profile: mid-size, hetero-rich molecules.
pub fn aids_profile() -> MoleculeProfile {
    MoleculeProfile {
        name: "aids",
        edge_range: (4, 45),
        ring_probability: 0.6,
        fusion_probability: 0.25,
        hetero_rate: 0.22,
        functional_group_rate: 0.35,
    }
}

/// PubChem-like profile: slightly larger, ring-heavy compounds.
pub fn pubchem_profile() -> MoleculeProfile {
    MoleculeProfile {
        name: "pubchem",
        edge_range: (6, 50),
        ring_probability: 0.7,
        fusion_probability: 0.35,
        hetero_rate: 0.18,
        functional_group_rate: 0.3,
    }
}

/// eMolecules-like profile: smaller screening compounds.
pub fn emol_profile() -> MoleculeProfile {
    MoleculeProfile {
        name: "emol",
        edge_range: (4, 35),
        ring_probability: 0.55,
        fusion_probability: 0.2,
        hetero_rate: 0.25,
        functional_group_rate: 0.4,
    }
}

struct Gen<'a> {
    labels: Vec<Label>,
    profile: &'a MoleculeProfile,
}

impl<'a> Gen<'a> {
    fn carbon(&self) -> Label {
        self.labels[0]
    }

    /// Add a ring of `n` atoms; either fused onto edge (a, b) or attached
    /// to vertex `a` by one bond (or free-standing for an empty graph).
    fn add_ring(&self, g: &mut Graph, n: usize, rng: &mut StdRng) {
        let fuse = g.edge_count() > 0 && rng.gen_bool(self.profile.fusion_probability);
        if fuse {
            // Share a random existing edge: add n-2 new atoms closing a cycle.
            let eid = catapult_graph::EdgeId(rng.gen_range(0..g.edge_count()) as u32);
            let e = g.edge(eid);
            let mut prev = e.u;
            for _ in 0..n - 2 {
                let v = g.add_vertex(self.ring_atom(rng));
                let _ = g.add_edge(prev, v);
                prev = v;
            }
            let _ = g.ensure_edge(prev, e.v);
        } else {
            let anchor = if g.vertex_count() > 0 {
                Some(VertexId(rng.gen_range(0..g.vertex_count()) as u32))
            } else {
                None
            };
            let first = g.add_vertex(self.ring_atom(rng));
            let mut prev = first;
            for _ in 1..n {
                let v = g.add_vertex(self.ring_atom(rng));
                let _ = g.add_edge(prev, v);
                prev = v;
            }
            let _ = g.add_edge(prev, first);
            if let Some(a) = anchor {
                let _ = g.add_edge(a, first);
            }
        }
    }

    /// Ring atoms are mostly carbon with occasional N/O/S (pyridine-like).
    fn ring_atom(&self, rng: &mut StdRng) -> Label {
        if rng.gen_bool(self.profile.hetero_rate * 0.5) {
            let i = catapult_graph::random::weighted_choice(&HETERO_WEIGHTS[..3], rng).unwrap_or(0);
            self.labels[i + 1]
        } else {
            self.carbon()
        }
    }

    /// Chain atoms form a mostly-carbon backbone (as in real molecules,
    /// where heteroatoms concentrate in functional groups and ring
    /// substitutions, not mid-chain).
    fn chain_atom(&self, rng: &mut StdRng) -> Label {
        if rng.gen_bool(self.profile.hetero_rate * 0.3) {
            let i = catapult_graph::random::weighted_choice(&HETERO_WEIGHTS[..3], rng).unwrap_or(0);
            self.labels[i + 1]
        } else {
            self.carbon()
        }
    }

    /// Add a chain of `n` atoms attached to a random existing vertex.
    fn add_chain(&self, g: &mut Graph, n: usize, rng: &mut StdRng) {
        let mut prev = if g.vertex_count() > 0 {
            VertexId(rng.gen_range(0..g.vertex_count()) as u32)
        } else {
            g.add_vertex(self.chain_atom(rng))
        };
        for _ in 0..n {
            let v = g.add_vertex(self.chain_atom(rng));
            let _ = g.add_edge(prev, v);
            prev = v;
        }
    }

    /// Decorate with a functional-group motif rooted at a random vertex.
    fn add_functional_group(&self, g: &mut Graph, rng: &mut StdRng) {
        if g.vertex_count() == 0 {
            return;
        }
        let (c, n, o, s, cl) = (
            self.labels[0],
            self.labels[1],
            self.labels[2],
            self.labels[3],
            self.labels[4],
        );
        let root = VertexId(rng.gen_range(0..g.vertex_count()) as u32);
        match rng.gen_range(0..5) {
            0 => {
                // Urea-like: root—C(−O)(−N)—N (the §1 motivating motif).
                let cc = g.add_vertex(c);
                let oo = g.add_vertex(o);
                let n1 = g.add_vertex(n);
                let n2 = g.add_vertex(n);
                let _ = g.add_edge(root, n1);
                let _ = g.add_edge(n1, cc);
                let _ = g.add_edge(cc, oo);
                let _ = g.add_edge(cc, n2);
            }
            1 => {
                // Carboxyl: root—C(−O)(−O).
                let cc = g.add_vertex(c);
                let o1 = g.add_vertex(o);
                let o2 = g.add_vertex(o);
                let _ = g.add_edge(root, cc);
                let _ = g.add_edge(cc, o1);
                let _ = g.add_edge(cc, o2);
            }
            2 => {
                // Amine: root—N.
                let n1 = g.add_vertex(n);
                let _ = g.add_edge(root, n1);
            }
            3 => {
                // Thio-ether: root—S—C.
                let s1 = g.add_vertex(s);
                let c1 = g.add_vertex(c);
                let _ = g.add_edge(root, s1);
                let _ = g.add_edge(s1, c1);
            }
            _ => {
                // Halide: root—Cl.
                let x = g.add_vertex(cl);
                let _ = g.add_edge(root, x);
            }
        }
    }

    fn molecule(&self, rng: &mut StdRng) -> Graph {
        let (lo, hi) = self.profile.edge_range;
        let target = rng.gen_range(lo..=hi);
        let mut g = Graph::new();
        // Start with a core motif.
        if rng.gen_bool(self.profile.ring_probability) {
            let n = ring_size(rng);
            self.add_ring(&mut g, n, rng);
        } else {
            self.add_chain(&mut g, rng.gen_range(2..=5), rng);
        }
        // Grow until the edge target is met.
        while g.edge_count() < target {
            let roll: f64 = rng.gen();
            if roll < self.profile.functional_group_rate {
                self.add_functional_group(&mut g, rng);
            } else if roll < self.profile.functional_group_rate + self.profile.ring_probability {
                let n = ring_size(rng);
                self.add_ring(&mut g, n, rng);
            } else {
                self.add_chain(&mut g, rng.gen_range(1..=4), rng);
            }
        }
        catapult_graph::debug_invariants!(g.validate());
        g
    }
}

/// Ring sizes follow chemistry: 6 dominates, then 5, rarely 3/4/7/8.
fn ring_size(rng: &mut StdRng) -> usize {
    const SIZES: [usize; 6] = [6, 5, 7, 4, 3, 8];
    const WEIGHTS: [f64; 6] = [0.5, 0.3, 0.07, 0.06, 0.04, 0.03];
    SIZES[catapult_graph::random::weighted_choice(&WEIGHTS, rng).unwrap_or(0)]
}

/// Generate a repository of `count` molecules under `profile`,
/// deterministically from `seed`.
pub fn generate(profile: &MoleculeProfile, count: usize, seed: u64) -> MoleculeDb {
    let mut interner = LabelInterner::new();
    let labels: Vec<Label> = ELEMENTS.iter().map(|e| interner.intern(e)).collect();
    let gen = Gen { labels, profile };
    let mut rng = StdRng::seed_from_u64(seed);
    let graphs = (0..count).map(|_| gen.molecule(&mut rng)).collect();
    MoleculeDb { graphs, interner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::components::is_connected;

    #[test]
    fn generates_connected_molecules_in_range() {
        let db = generate(&aids_profile(), 50, 1);
        assert_eq!(db.len(), 50);
        for g in &db.graphs {
            assert!(is_connected(g), "molecule must be connected");
            assert!(g.edge_count() >= 4);
            // Growth may overshoot by one motif; allow headroom.
            assert!(g.edge_count() <= 45 + 10, "size {}", g.edge_count());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&pubchem_profile(), 20, 42);
        let b = generate(&pubchem_profile(), 20, 42);
        for (x, y) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(x.invariant_signature(), y.invariant_signature());
        }
        let c = generate(&pubchem_profile(), 20, 43);
        let same = a
            .graphs
            .iter()
            .zip(&c.graphs)
            .filter(|(x, y)| x.invariant_signature() == y.invariant_signature())
            .count();
        assert!(same < 20, "different seeds should differ");
    }

    #[test]
    fn carbon_dominates() {
        let db = generate(&aids_profile(), 100, 7);
        let carbon = db.interner.get("C").unwrap();
        let mut c_count = 0usize;
        let mut total = 0usize;
        for g in &db.graphs {
            total += g.vertex_count();
            c_count += g.labels().iter().filter(|&&l| l == carbon).count();
        }
        let frac = c_count as f64 / total as f64;
        assert!(frac > 0.6, "carbon fraction {frac}");
    }

    #[test]
    fn contains_ring_structures() {
        let db = generate(&pubchem_profile(), 50, 3);
        // Ring-bearing molecules have |E| >= |V| (cyclomatic number > 0).
        let with_cycles = db
            .graphs
            .iter()
            .filter(|g| g.edge_count() >= g.vertex_count())
            .count();
        assert!(with_cycles > 25, "only {with_cycles} cyclic molecules");
    }

    #[test]
    fn urea_motif_appears() {
        // The functional-group generator plants urea-like N-C(-O)-N motifs;
        // across a few hundred molecules at least one must contain it.
        let db = generate(&aids_profile(), 200, 11);
        let n = db.interner.get("N").unwrap();
        let c = db.interner.get("C").unwrap();
        let o = db.interner.get("O").unwrap();
        let urea = Graph::from_parts(&[n, c, o, n], &[(0, 1), (1, 2), (1, 3)]);
        let found = db
            .graphs
            .iter()
            .any(|g| catapult_graph::iso::contains(g, &urea));
        assert!(found, "no urea motif in 200 molecules");
    }

    #[test]
    fn profiles_differ_in_scale() {
        let aids = generate(&aids_profile(), 50, 5);
        let emol = generate(&emol_profile(), 50, 5);
        let avg = |db: &MoleculeDb| {
            db.graphs.iter().map(Graph::edge_count).sum::<usize>() as f64 / db.len() as f64
        };
        assert!(avg(&aids) > avg(&emol), "aids molecules should be larger");
    }
}
