//! Coarse clustering (Algorithm 2).
//!
//! 1. Mine frequent subtrees from the database ([10]);
//! 2. refine the subtree set with greedy facility-location selection
//!    (Appendix B) so near-duplicate features are dropped;
//! 3. represent each graph as a binary feature vector over the selected
//!    subtrees;
//! 4. cluster the vectors with k-means (k-means++ seeds), `k = |D| / N`.

use crate::kmeans::{as_clusters, kmeans, KMeansConfig};
use catapult_graph::Graph;
use catapult_mining::facility::select_features;
use catapult_mining::subtree::{
    feature_matrix, mine_frequent_subtrees, FrequentSubtree, SubtreeMinerConfig,
};
use rand::Rng;

/// Parameters for coarse clustering.
#[derive(Clone, Copy, Debug)]
pub struct CoarseConfig {
    /// Maximum cluster size `N`; the k-means `k` is `max(|D| / N, 1)`.
    pub max_cluster_size: usize,
    /// Frequent-subtree mining parameters (`min_fr` etc.).
    pub miner: SubtreeMinerConfig,
    /// Maximum number of subtree features kept by the facility-location
    /// refinement.
    pub max_features: usize,
    /// k-means iteration cap.
    pub kmeans_iterations: usize,
}

impl Default for CoarseConfig {
    fn default() -> Self {
        CoarseConfig {
            max_cluster_size: 20,
            miner: SubtreeMinerConfig::default(),
            max_features: 64,
            kmeans_iterations: 30,
        }
    }
}

/// Output of coarse clustering.
#[derive(Clone, Debug)]
pub struct CoarseResult {
    /// Clusters of graph indices (a partition of `0..|D|`).
    pub clusters: Vec<Vec<u32>>,
    /// The selected frequent-subtree features.
    pub features: Vec<FrequentSubtree>,
}

/// Run Algorithm 2 with pre-mined frequent subtrees (the sampling path of
/// §4.3 mines them from an eager sample and recounts on `db`).
pub fn coarse_cluster_with_subtrees<R: Rng>(
    db: &[Graph],
    subtrees: Vec<FrequentSubtree>,
    cfg: &CoarseConfig,
    rng: &mut R,
) -> CoarseResult {
    let n = db.len();
    if n == 0 {
        return CoarseResult {
            clusters: Vec::new(),
            features: Vec::new(),
        };
    }
    // Facility-location refinement of the subtree set (Appendix B).
    let canon: Vec<_> = subtrees.iter().map(|t| t.canonical.clone()).collect();
    let selected = select_features(&canon, cfg.max_features, 0.0);
    let features: Vec<FrequentSubtree> =
        selected.into_iter().map(|i| subtrees[i].clone()).collect();

    if features.is_empty() {
        // No frequent structure at all: a single cluster.
        return CoarseResult {
            clusters: vec![(0..n as u32).collect()],
            features,
        };
    }

    let matrix = feature_matrix(n, &features);
    let points: Vec<Vec<f32>> = matrix
        .iter()
        .map(|row| row.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
        .collect();
    let k = (n / cfg.max_cluster_size).max(1);
    let result = kmeans(
        &points,
        &KMeansConfig {
            k,
            max_iterations: cfg.kmeans_iterations,
        },
        rng,
    );
    CoarseResult {
        clusters: as_clusters(&result.assignment, result.centroids.len()),
        features,
    }
}

/// Run Algorithm 2 end to end (mining included).
pub fn coarse_cluster<R: Rng>(db: &[Graph], cfg: &CoarseConfig, rng: &mut R) -> CoarseResult {
    let subtrees = mine_frequent_subtrees(db, &cfg.miner);
    coarse_cluster_with_subtrees(db, subtrees, cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};
    use rand::SeedableRng;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn ring(n: u32, label: Label) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(label);
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32, label: Label) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(label);
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    /// Two clearly distinct families: rings of label-0 and chains of label-1.
    fn bimodal_db() -> Vec<Graph> {
        let mut db = Vec::new();
        for i in 0..10 {
            db.push(ring(5 + i % 2, l(0)));
            db.push(chain(5 + i % 2, l(1)));
        }
        db
    }

    #[test]
    fn partitions_the_database() {
        let db = bimodal_db();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let cfg = CoarseConfig {
            max_cluster_size: 10,
            ..Default::default()
        };
        let r = coarse_cluster(&db, &cfg, &mut rng);
        let mut all: Vec<u32> = r.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..db.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn separates_label_families() {
        let db = bimodal_db();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let cfg = CoarseConfig {
            max_cluster_size: 10,
            ..Default::default()
        };
        let r = coarse_cluster(&db, &cfg, &mut rng);
        // Every cluster must be label-pure: rings (even indices) never share
        // a cluster with chains (odd indices).
        for c in &r.clusters {
            let has_ring = c.iter().any(|&i| i % 2 == 0);
            let has_chain = c.iter().any(|&i| i % 2 == 1);
            assert!(!(has_ring && has_chain), "mixed cluster {c:?}");
        }
    }

    #[test]
    fn empty_db() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = coarse_cluster(&[], &CoarseConfig::default(), &mut rng);
        assert!(r.clusters.is_empty());
    }

    #[test]
    fn degenerate_features_fall_back_to_single_cluster() {
        // Graphs with all-distinct labels: nothing is frequent at 90%.
        let db = vec![
            chain(3, l(10)),
            chain(3, l(11)),
            chain(3, l(12)),
            chain(3, l(13)),
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = CoarseConfig {
            miner: catapult_mining::subtree::SubtreeMinerConfig {
                min_support: 0.9,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = coarse_cluster(&db, &cfg, &mut rng);
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].len(), 4);
    }
}
