//! The small-graph clustering phase: coarse + fine clustering with
//! optional eager/lazy sampling — the left half of Fig. 3.
//!
//! Exp 1 compares five strategies: coarse only (`CC`), fine only with MCCS
//! or MCS (`mccsFC` / `mcsFC`), and the hybrid coarse-then-fine pipelines
//! (`mccsH` / `mcsH`, the paper's recommended configuration).

use crate::ckpt_io::{
    decode_clustering, decode_coarse, decode_mining, encode_clustering, encode_coarse,
    encode_mining, ClusteringCkpt, CoarseCkpt, MiningCkpt, NoSnap, SnapRng,
};
use crate::coarse::{coarse_cluster_with_subtrees, CoarseConfig, CoarseResult};
use crate::fine::{fine_inner, FineConfig, SimilarityKind};
use crate::sampling::{
    eager_sample, lazy_sample_clusters, lowered_support, EagerConfig, LazyConfig,
};
use catapult_ckpt::{CkptError, StageStore};
use catapult_graph::iso::contains_tagged;
use catapult_graph::{Graph, SearchBudget, Tally, TallyCounts};
use catapult_mining::subtree::{mine_subtrees, FrequentSubtree, SubtreeMinerConfig};
use catapult_obs::{Recorder, Stopwatch};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Duration;

/// Clustering strategy (Exp 1 naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Coarse (feature-vector k-means) clustering only.
    CoarseOnly,
    /// Fine (seed-splitting) clustering only, from one all-graph cluster.
    FineOnly(SimilarityKind),
    /// Coarse then fine — the paper's hybrid.
    Hybrid(SimilarityKind),
}

impl Strategy {
    /// The paper's short name for the strategy (CC, mccsFC, mcsFC, mccsH,
    /// mcsH).
    pub fn paper_name(&self) -> &'static str {
        match self {
            Strategy::CoarseOnly => "CC",
            Strategy::FineOnly(SimilarityKind::Mccs) => "mccsFC",
            Strategy::FineOnly(SimilarityKind::Mcs) => "mcsFC",
            Strategy::Hybrid(SimilarityKind::Mccs) => "mccsH",
            Strategy::Hybrid(SimilarityKind::Mcs) => "mcsH",
        }
    }
}

/// Full clustering-phase configuration.
#[derive(Clone, Debug)]
pub struct ClusteringConfig {
    /// Strategy to run.
    pub strategy: Strategy,
    /// Maximum cluster size `N` (paper default 20).
    pub max_cluster_size: usize,
    /// Frequent-subtree mining settings for coarse clustering.
    pub miner: SubtreeMinerConfig,
    /// Facility-location feature cap.
    pub max_features: usize,
    /// Execution budget shared by the phase's NP-hard kernels: the node
    /// cap bounds each MCS/MCCS fine-clustering search (default 100k), and
    /// any deadline/cancellation also stops mining and containment probes.
    pub search: SearchBudget,
    /// Enable §4.3 sampling (eager + lazy).
    pub sampling: Option<SamplingConfig>,
    /// Supervised execution for the fine stage's parallel similarity
    /// rows: a panicking worker loses only its own item (tagged
    /// `Degraded`, label-vector fallback) instead of aborting the run.
    /// Off (fail-fast) by default.
    pub keep_going: bool,
    /// Observability recorder (disabled by default). When enabled, the
    /// phase emits `clustering` spans (with `mining` / `coarse` /
    /// `lazy_sample` / `fine` children) and attributes kernel effort to
    /// the `mining.*` and `clustering.*` counters.
    pub recorder: Recorder,
}

/// Combined sampling settings.
#[derive(Clone, Copy, Debug, Default)]
pub struct SamplingConfig {
    /// Eager (pre-clustering) sampling parameters.
    pub eager: EagerConfig,
    /// Lazy (post-coarse) stratified sampling parameters.
    pub lazy: LazyConfig,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            strategy: Strategy::Hybrid(SimilarityKind::Mccs),
            max_cluster_size: 20,
            miner: SubtreeMinerConfig::default(),
            max_features: 64,
            search: SearchBudget::nodes(100_000),
            sampling: None,
            keep_going: false,
            recorder: Recorder::disabled(),
        }
    }
}

/// Output of the clustering phase.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Clusters of indices into the *original* database. With sampling
    /// enabled this is a partition of the sampled subset, not of all of
    /// `0..|D|`.
    pub clusters: Vec<Vec<u32>>,
    /// Frequent subtrees used as coarse features (empty for fine-only).
    pub features: Vec<FrequentSubtree>,
    /// Wall-clock time of the whole phase.
    pub elapsed: Duration,
    /// Completeness audit of the mining-stage kernel calls (subtree
    /// mining + sampling recounts).
    pub mining: TallyCounts,
    /// Completeness audit of the fine-clustering MCS/MCCS calls.
    pub fine: TallyCounts,
}

impl Clustering {
    /// Number of graphs covered by the clustering.
    pub fn covered(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }
}

/// Mine coarse features, honouring eager sampling when configured:
/// mine on the sample at the lowered support (Lemma 4.4), then recount the
/// survivors on the full database at the original support. The returned
/// [`TallyCounts`] audits every containment probe the stage ran; degraded
/// probes can only under-count support (lower bounds), never invent it.
fn mine_features<R: Rng>(
    db: &[Graph],
    cfg: &ClusteringConfig,
    search: &SearchBudget,
    rng: &mut R,
) -> (Vec<FrequentSubtree>, TallyCounts) {
    let _span = cfg.recorder.span("mining");
    match &cfg.sampling {
        None => {
            let out = mine_subtrees(db, &cfg.miner, search);
            (out.subtrees, out.kernel)
        }
        Some(s) => {
            let sample_idx = {
                let _s = cfg.recorder.span("eager_sample");
                eager_sample(db.len(), &s.eager, rng)
            };
            let sample: Vec<Graph> = sample_idx.iter().map(|&i| db[i].clone()).collect();
            let low = lowered_support(cfg.miner.min_support, sample.len(), &s.eager);
            let low_cfg = SubtreeMinerConfig {
                min_support: low,
                ..cfg.miner
            };
            let mined = {
                let _s = cfg.recorder.span("mine_sample");
                mine_subtrees(&sample, &low_cfg, search)
            };
            // Recount each potential subtree on the full database at min_fr.
            let _recount_span = cfg.recorder.span("recount");
            let probe = search.with_default_cap(catapult_graph::iso::DEFAULT_NODE_CAP);
            let tally = Tally::new();
            let min_count = ((cfg.miner.min_support * db.len() as f64).ceil() as usize).max(1);
            let mut confirmed = Vec::new();
            // Progress accounting (`--progress` ETA): one item per
            // candidate subtree recounted on the full database.
            search
                .probe
                .add("items", "total", mined.subtrees.len() as u64);
            for t in mined.subtrees {
                let txs: Vec<u32> = (0..db.len() as u32)
                    .filter(|&i| {
                        let (found, c) = contains_tagged(&db[i as usize], &t.tree, &probe);
                        tally.record(c);
                        found
                    })
                    .collect();
                if txs.len() >= min_count {
                    confirmed.push(FrequentSubtree {
                        transactions: txs,
                        ..t
                    });
                }
                search.probe.add("items", "done", 1);
            }
            (confirmed, mined.kernel.merge(tally.counts()))
        }
    }
}

/// Run the configured small-graph clustering strategy over `db`.
pub fn cluster_graphs<R: Rng>(db: &[Graph], cfg: &ClusteringConfig, rng: &mut R) -> Clustering {
    match cluster_inner(db, cfg, &mut NoSnap(rng), None) {
        Ok(c) => c,
        // A store-free run performs no checkpoint I/O and cannot fail.
        Err(_) => unreachable!("checkpoint-free clustering cannot fail"),
    }
}

/// As [`cluster_graphs`], writing a checkpoint at every stage boundary
/// (`mining` → `coarse` → `fine` → `clustering`) and — when `store` is
/// resuming — continuing from the furthest compatible checkpoint on
/// disk, including mid-fine-clustering. An interrupted-then-resumed run
/// returns exactly what the uninterrupted run would have (`elapsed`
/// excepted: wall-clock restarts with the process).
pub fn cluster_graphs_resumable(
    db: &[Graph],
    cfg: &ClusteringConfig,
    rng: &mut StdRng,
    store: &StageStore,
) -> Result<Clustering, CkptError> {
    cluster_inner(db, cfg, rng, Some(store))
}

/// Warn about a checkpoint whose checksum held but whose payload no
/// longer decodes (schema drift within a version), and drop it so the
/// stage recomputes.
fn discard_undecodable(
    st: &StageStore,
    stage: &str,
    err: &dyn std::fmt::Display,
) -> Result<(), CkptError> {
    catapult_obs::warn(format!(
        "discarding undecodable {stage} checkpoint ({err}); recomputing"
    ));
    st.discard(stage)
}

/// The mining stage with checkpoint load/save around [`mine_features`].
fn mining_stage<R: SnapRng>(
    db: &[Graph],
    cfg: &ClusteringConfig,
    search: &SearchBudget,
    rng: &mut R,
    store: Option<&StageStore>,
) -> Result<(Vec<FrequentSubtree>, TallyCounts), CkptError> {
    if let Some(st) = store {
        if let Some((_seq, payload)) = st.load("mining")? {
            match decode_mining(&payload) {
                Ok(m) => {
                    rng.restore(m.rng);
                    return Ok((m.features, m.mining));
                }
                Err(e) => discard_undecodable(st, "mining", &e)?,
            }
        }
    }
    let (features, kernel) = mine_features(db, cfg, search, rng);
    if let (Some(st), Some(state)) = (store, rng.snapshot()) {
        let ck = MiningCkpt {
            features,
            mining: kernel,
            rng: state,
        };
        st.save("mining", 0, &encode_mining(&ck))?;
        return Ok((ck.features, ck.mining));
    }
    Ok((features, kernel))
}

/// The coarse stage (mining → k-means → lazy sampling) with checkpoint
/// load/save. The returned [`CoarseCkpt`] carries the post-lazy
/// clusters, the selected features, and the mining audit.
fn coarse_stage<R: SnapRng>(
    db: &[Graph],
    cfg: &ClusteringConfig,
    mining_search: &SearchBudget,
    coarse_cfg: &CoarseConfig,
    rng: &mut R,
    store: Option<&StageStore>,
) -> Result<CoarseCkpt, CkptError> {
    if let Some(st) = store {
        if let Some((_seq, payload)) = st.load("coarse")? {
            match decode_coarse(&payload) {
                Ok(c) => {
                    rng.restore(c.rng);
                    return Ok(c);
                }
                Err(e) => discard_undecodable(st, "coarse", &e)?,
            }
        }
    }
    let (subtrees, mine_kernel) = mining_stage(db, cfg, mining_search, rng, store)?;
    let CoarseResult { clusters, features } = {
        let _s = cfg.recorder.span("coarse");
        coarse_cluster_with_subtrees(db, subtrees, coarse_cfg, rng)
    };
    // Lazy sampling shrinks oversized clusters before fine clustering.
    let clusters = match &cfg.sampling {
        Some(s) => {
            let _s2 = cfg.recorder.span("lazy_sample");
            lazy_sample_clusters(&clusters, db.len(), cfg.max_cluster_size, &s.lazy, rng)
        }
        None => clusters,
    };
    let ck = CoarseCkpt {
        clusters,
        features,
        mining: mine_kernel,
        rng: rng.snapshot().unwrap_or_default(),
    };
    if let (Some(st), Some(_)) = (store, rng.snapshot()) {
        st.save("coarse", 0, &encode_coarse(&ck))?;
    }
    Ok(ck)
}

/// The shared engine behind [`cluster_graphs`] and
/// [`cluster_graphs_resumable`].
fn cluster_inner<R: SnapRng>(
    db: &[Graph],
    cfg: &ClusteringConfig,
    rng: &mut R,
    store: Option<&StageStore>,
) -> Result<Clustering, CkptError> {
    let _span = cfg.recorder.span("clustering");
    // Whole-phase checkpoint present: the phase already ran to
    // completion — reuse its output and fast-forward the RNG.
    if let Some(st) = store {
        if let Some((_seq, payload)) = st.load("clustering")? {
            match decode_clustering(&payload) {
                Ok(c) => {
                    rng.restore(c.rng);
                    return Ok(c.clustering);
                }
                Err(e) => discard_undecodable(st, "clustering", &e)?,
            }
        }
    }
    let start = Stopwatch::start();
    // Kernel effort is attributed per stage: subtree mining (and its
    // sampling recounts) to `mining.*`, fine-clustering MCS/MCCS to
    // `clustering.*` — matching the two TallyCounts this phase reports.
    let mining_search = cfg
        .search
        .clone()
        .with_probe(cfg.recorder.stage_probe("mining"));
    let fine_search = cfg
        .search
        .clone()
        .with_probe(cfg.recorder.stage_probe("clustering"));
    let fine_cfg = |kind| FineConfig {
        max_cluster_size: cfg.max_cluster_size,
        similarity: kind,
        budget: fine_search.clone(),
        keep_going: cfg.keep_going,
    };
    let coarse_cfg = CoarseConfig {
        max_cluster_size: cfg.max_cluster_size,
        miner: cfg.miner,
        max_features: cfg.max_features,
        kmeans_iterations: 30,
    };

    let mut mining = TallyCounts::default();
    let mut fine = TallyCounts::default();
    let (clusters, features) = match cfg.strategy {
        Strategy::FineOnly(kind) => {
            let all: Vec<u32> = (0..db.len() as u32).collect();
            let initial = if all.is_empty() { vec![] } else { vec![all] };
            let _s = cfg.recorder.span("fine");
            let out = fine_inner(db, initial, &fine_cfg(kind), rng, store)?;
            fine = out.kernel;
            (out.clusters, Vec::new())
        }
        Strategy::CoarseOnly | Strategy::Hybrid(_) => {
            let coarse = coarse_stage(db, cfg, &mining_search, &coarse_cfg, rng, store)?;
            mining = coarse.mining;
            match cfg.strategy {
                Strategy::CoarseOnly => (coarse.clusters, coarse.features),
                Strategy::Hybrid(kind) => {
                    let _s = cfg.recorder.span("fine");
                    let out = fine_inner(db, coarse.clusters, &fine_cfg(kind), rng, store)?;
                    fine = out.kernel;
                    (out.clusters, coarse.features)
                }
                Strategy::FineOnly(_) => unreachable!(),
            }
        }
    };
    // Sampling pipelines keep only the sampled subset, so they cannot be
    // held to the partition contract — membership soundness still applies.
    catapult_graph::debug_invariants!(crate::invariants::validate_assignment(
        db.len(),
        &clusters,
        cfg.sampling.is_none(),
    ));
    let clustering = Clustering {
        clusters,
        features,
        elapsed: start.elapsed(),
        mining,
        fine,
    };
    if let (Some(st), Some(state)) = (store, rng.snapshot()) {
        let ck = ClusteringCkpt {
            clustering,
            rng: state,
        };
        st.save("clustering", 0, &encode_clustering(&ck))?;
        return Ok(ck.clustering);
    }
    Ok(clustering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};
    use rand::SeedableRng;

    fn ring(n: u32, label: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn db() -> Vec<Graph> {
        (0..30).map(|i| ring(4 + (i % 3), i % 2)).collect()
    }

    #[test]
    fn all_strategies_partition() {
        let db = db();
        for strategy in [
            Strategy::CoarseOnly,
            Strategy::FineOnly(SimilarityKind::Mccs),
            Strategy::FineOnly(SimilarityKind::Mcs),
            Strategy::Hybrid(SimilarityKind::Mccs),
            Strategy::Hybrid(SimilarityKind::Mcs),
        ] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let cfg = ClusteringConfig {
                strategy,
                max_cluster_size: 8,
                ..Default::default()
            };
            let c = cluster_graphs(&db, &cfg, &mut rng);
            let mut all: Vec<u32> = c.clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..db.len() as u32).collect::<Vec<_>>(),
                "strategy {strategy:?}"
            );
        }
    }

    #[test]
    fn fine_strategies_respect_cap() {
        let db = db();
        for kind in [SimilarityKind::Mccs, SimilarityKind::Mcs] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let cfg = ClusteringConfig {
                strategy: Strategy::Hybrid(kind),
                max_cluster_size: 5,
                ..Default::default()
            };
            let c = cluster_graphs(&db, &cfg, &mut rng);
            assert!(c.clusters.iter().all(|cl| cl.len() <= 5));
        }
    }

    #[test]
    fn sampling_reduces_covered_set() {
        // With a tiny Cochran sample, large clusters shrink.
        let db: Vec<Graph> = (0..60).map(|_| ring(5, 0)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = ClusteringConfig {
            strategy: Strategy::CoarseOnly,
            max_cluster_size: 10,
            sampling: Some(SamplingConfig {
                eager: EagerConfig::default(),
                lazy: LazyConfig {
                    z: 1.65,
                    p: 0.5,
                    e: 0.3, // tiny representative sample
                },
            }),
            ..Default::default()
        };
        let c = cluster_graphs(&db, &cfg, &mut rng);
        assert!(c.covered() <= 60);
    }

    #[test]
    fn paper_names() {
        assert_eq!(Strategy::CoarseOnly.paper_name(), "CC");
        assert_eq!(Strategy::Hybrid(SimilarityKind::Mccs).paper_name(), "mccsH");
        assert_eq!(
            Strategy::FineOnly(SimilarityKind::Mcs).paper_name(),
            "mcsFC"
        );
    }

    #[test]
    fn empty_db() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let c = cluster_graphs(&[], &ClusteringConfig::default(), &mut rng);
        assert!(c.clusters.is_empty());
    }

    fn ckpt_store(dir: &std::path::Path, resume: bool) -> StageStore {
        let mut ck = catapult_ckpt::CheckpointConfig::new(dir);
        ck.resume = resume;
        // Tiny chunks so fine clustering flushes mid-split many times.
        ck.chunk_pairs = 2;
        let fp = catapult_ckpt::Fingerprint {
            dataset_hash: 0xDB,
            config_hash: 0xCF6,
            eta_min: 3,
            eta_max: 8,
            gamma: 30,
        };
        StageStore::open(&ck, fp, Recorder::disabled()).unwrap()
    }

    #[test]
    fn resumable_run_matches_plain_run_and_resumes_from_disk() {
        let db = db();
        for (i, strategy) in [
            Strategy::CoarseOnly,
            Strategy::Hybrid(SimilarityKind::Mccs),
            Strategy::FineOnly(SimilarityKind::Mcs),
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = ClusteringConfig {
                strategy,
                max_cluster_size: 6,
                ..Default::default()
            };
            let mut plain_rng = rand::rngs::StdRng::seed_from_u64(9);
            let plain = cluster_graphs(&db, &cfg, &mut plain_rng);

            let dir = std::env::temp_dir().join(format!("catapult-cluster-resume-{i}"));
            std::fs::remove_dir_all(&dir).ok();
            let store = ckpt_store(&dir, false);
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let first = cluster_graphs_resumable(&db, &cfg, &mut rng, &store).unwrap();
            assert_eq!(first.clusters, plain.clusters, "strategy {strategy:?}");
            assert_eq!(first.mining, plain.mining, "strategy {strategy:?}");
            assert_eq!(first.fine, plain.fine, "strategy {strategy:?}");
            assert_eq!(rng.state(), plain_rng.state(), "strategy {strategy:?}");

            // A full re-run in resume mode short-circuits on the
            // whole-phase checkpoint and fast-forwards the RNG to the
            // same post-phase state.
            let store2 = ckpt_store(&dir, true);
            let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
            let second = cluster_graphs_resumable(&db, &cfg, &mut rng2, &store2).unwrap();
            assert_eq!(second.clusters, first.clusters);
            assert_eq!(second.fine, first.fine);
            assert_eq!(rng2.state(), rng.state());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn resume_recomputes_only_missing_stages() {
        // Simulate a crash between fine clustering and the phase-level
        // checkpoint: delete the later checkpoints and resume. The
        // earlier stage snapshots (mining/coarse + their RNG states)
        // must be enough to reproduce the uninterrupted result.
        let db = db();
        let cfg = ClusteringConfig {
            strategy: Strategy::Hybrid(SimilarityKind::Mccs),
            max_cluster_size: 5,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join("catapult-cluster-resume-stage");
        std::fs::remove_dir_all(&dir).ok();
        let store = ckpt_store(&dir, false);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let full = cluster_graphs_resumable(&db, &cfg, &mut rng, &store).unwrap();

        for doomed in [&["clustering"][..], &["clustering", "fine"][..]] {
            let resumed = ckpt_store(&dir, true);
            for stage in doomed {
                resumed.discard(stage).unwrap();
            }
            let mut rng2 = rand::rngs::StdRng::seed_from_u64(11);
            let redo = cluster_graphs_resumable(&db, &cfg, &mut rng2, &resumed).unwrap();
            assert_eq!(redo.clusters, full.clusters, "deleted {doomed:?}");
            assert_eq!(redo.fine, full.fine, "deleted {doomed:?}");
            assert_eq!(rng2.state(), rng.state(), "deleted {doomed:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
