//! Eager and lazy sampling for very large repositories (§4.3).
//!
//! * **Eager sampling** draws a uniform random sample before clustering;
//!   its size `|S_eager| ≥ (1 / 2ε²) ln(2/ρ)` bounds, via Hoeffding / the
//!   Toivonen association-rule argument [38], the probability `ρ` that any
//!   subtree's sampled frequency deviates from its true frequency by more
//!   than `ε`. Frequent subtrees are mined on the sample at a lowered
//!   support `low_fr < min_fr − √((1 / 2|S|) ln(1/φ))` (Lemma 4.4) and then
//!   recounted on the full database at `min_fr`.
//! * **Lazy sampling** stratified-samples oversized clusters after coarse
//!   clustering, with the Cochran representative-sample size
//!   `|S_sample| = Z² p q / e²` prorated per cluster (Lemma 4.5).

use catapult_graph::random::sample_indices;
use rand::Rng;

/// Eager-sampling parameters (`ρ`, `ε`, and the miss probability `φ` of
/// Lemma 4.4).
#[derive(Clone, Copy, Debug)]
pub struct EagerConfig {
    /// Error bound `ε` on sampled subtree frequency.
    pub epsilon: f64,
    /// Maximum probability `ρ` of exceeding `ε`.
    pub rho: f64,
    /// Miss probability `φ` used to derive the lowered support.
    pub phi: f64,
}

impl Default for EagerConfig {
    fn default() -> Self {
        // The paper's settings (Exp 2): ρ = 0.01, ε = 0.02.
        EagerConfig {
            epsilon: 0.02,
            rho: 0.01,
            phi: 0.01,
        }
    }
}

/// `|S_eager| = ⌈(1 / 2ε²) ln(2/ρ)⌉` — e.g. 6623 for ε = 0.02, ρ = 0.01.
pub fn eager_sample_size(cfg: &EagerConfig) -> usize {
    ((1.0 / (2.0 * cfg.epsilon * cfg.epsilon)) * (2.0 / cfg.rho).ln()).ceil() as usize
}

/// Lowered support threshold for mining on the sample (Lemma 4.4):
/// `low_fr = min_fr − √((1 / 2|S|) ln(1/φ))`, floored at a small positive
/// value so the miner still prunes.
pub fn lowered_support(min_fr: f64, sample_size: usize, cfg: &EagerConfig) -> f64 {
    if sample_size == 0 {
        return min_fr;
    }
    let delta = ((1.0 / (2.0 * sample_size as f64)) * (1.0 / cfg.phi).ln()).sqrt();
    (min_fr - delta).max(0.01)
}

/// Draw the eager sample: `min(|S_eager|, n)` distinct indices.
pub fn eager_sample<R: Rng>(n: usize, cfg: &EagerConfig, rng: &mut R) -> Vec<usize> {
    let size = eager_sample_size(cfg).min(n);
    let mut s = sample_indices(n, size, rng);
    s.sort_unstable();
    s
}

/// Lazy-sampling parameters (Cochran).
#[derive(Clone, Copy, Debug)]
pub struct LazyConfig {
    /// Abscissa `Z` of the normal curve for the desired confidence
    /// (the paper uses `Z_{0.95/2} = 1.65` in its worked example).
    pub z: f64,
    /// Estimated proportion `p` (0.5 is the conservative maximum-variance
    /// choice).
    pub p: f64,
    /// Desired precision `e`.
    pub e: f64,
}

impl Default for LazyConfig {
    fn default() -> Self {
        // Paper settings (Exp 2): p = 0.5, Z = 1.65, e = 0.03.
        LazyConfig {
            z: 1.65,
            p: 0.5,
            e: 0.03,
        }
    }
}

/// Cochran representative sample size `|S_sample| = Z² p q / e²`.
pub fn cochran_sample_size(cfg: &LazyConfig) -> f64 {
    let q = 1.0 - cfg.p;
    cfg.z * cfg.z * cfg.p * q / (cfg.e * cfg.e)
}

/// Per-cluster lazy sample size (Lemma 4.5):
/// `|S_lazy(C)| = (|S_sample| / Σ|C_i|) × |C|`, at least 1 for non-empty
/// clusters and never more than `|C|`.
pub fn lazy_sample_size(cluster_size: usize, total_size: usize, cfg: &LazyConfig) -> usize {
    if cluster_size == 0 || total_size == 0 {
        return 0;
    }
    let s = (cochran_sample_size(cfg) / total_size as f64) * cluster_size as f64;
    (s.round() as usize).clamp(1, cluster_size)
}

/// Stratified lazy sampling: clusters larger than `threshold` are reduced
/// to their lazy sample; smaller clusters pass through untouched.
/// `total_size` is `Σ|C_i|` over all clusters (i.e. `|D|` after eager
/// sampling).
pub fn lazy_sample_clusters<R: Rng>(
    clusters: &[Vec<u32>],
    total_size: usize,
    threshold: usize,
    cfg: &LazyConfig,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    clusters
        .iter()
        .map(|c| {
            if c.len() <= threshold {
                return c.clone();
            }
            let target = lazy_sample_size(c.len(), total_size, cfg).max(threshold.min(c.len()));
            let mut picked: Vec<u32> = sample_indices(c.len(), target, rng)
                .into_iter()
                .map(|i| c[i])
                .collect();
            picked.sort_unstable();
            picked
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_eager_example() {
        // §4.3: ρ = 0.01, ε = 0.02 → |S_eager| = 6623.
        let cfg = EagerConfig {
            epsilon: 0.02,
            rho: 0.01,
            phi: 0.01,
        };
        assert_eq!(eager_sample_size(&cfg), 6623);
    }

    #[test]
    fn paper_lazy_example() {
        // §4.3: 50K graphs, cluster of 1000, p=0.5, Z=1.65, e=0.03
        // → |S_lazy| = (1.65²·0.25/0.03² / 50000) × 1000 ≈ 15.13 → 15.
        let cfg = LazyConfig {
            z: 1.65,
            p: 0.5,
            e: 0.03,
        };
        assert!((cochran_sample_size(&cfg) - 756.25).abs() < 0.01);
        assert_eq!(lazy_sample_size(1000, 50_000, &cfg), 15);
    }

    #[test]
    fn eager_sample_is_capped_and_sorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = eager_sample(100, &EagerConfig::default(), &mut rng);
        assert_eq!(s.len(), 100); // sample size 6623 > n
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lowered_support_is_below_min_fr() {
        let cfg = EagerConfig::default();
        let low = lowered_support(0.1, 6623, &cfg);
        assert!(low < 0.1);
        assert!(low > 0.0);
        // Tiny samples floor at 0.01.
        assert_eq!(lowered_support(0.05, 10, &cfg), 0.01);
    }

    #[test]
    fn lazy_clusters_shrink_only_large_ones() {
        let clusters: Vec<Vec<u32>> = vec![(0..5).collect(), (5..205).collect()];
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let out = lazy_sample_clusters(&clusters, 205, 20, &LazyConfig::default(), &mut rng);
        assert_eq!(out[0], clusters[0]);
        assert!(out[1].len() < 205);
        assert!(out[1].len() >= 20);
        // Sampled ids come from the original cluster.
        assert!(out[1].iter().all(|&i| (5..205).contains(&i)));
    }

    #[test]
    fn degenerate_sizes() {
        let cfg = LazyConfig::default();
        assert_eq!(lazy_sample_size(0, 100, &cfg), 0);
        assert_eq!(lazy_sample_size(10, 0, &cfg), 0);
        assert_eq!(lazy_sample_size(3, 1, &cfg), 3); // capped at cluster size
    }
}
