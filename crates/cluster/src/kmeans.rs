//! k-means clustering with k-means++ seeding (§4.1, [4]).
//!
//! Coarse clustering runs k-means over binary frequent-subtree feature
//! vectors with `k = |D| / N` and k-means++ seed selection. The paper notes
//! the framework is orthogonal to the specific feature-vector clustering
//! algorithm; this implementation is the standard Lloyd iteration with
//! squared-Euclidean distance, deterministic under a seeded RNG.

use catapult_graph::random::weighted_choice;
use rand::Rng;

/// k-means parameters.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Number of clusters (`k = |D| / N` in Algorithm 2).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iterations: 50,
        }
    }
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster assignment per point.
    pub assignment: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<Vec<f32>>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// with probability proportional to squared distance to the nearest chosen
/// centroid [4].
pub fn kmeans_pp_seeds<R: Rng>(points: &[Vec<f32>], k: usize, rng: &mut R) -> Vec<usize> {
    let n = points.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let mut seeds = Vec::with_capacity(k);
    seeds.push(rng.gen_range(0..n));
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| sq_dist(p, &points[seeds[0]]))
        .collect();
    while seeds.len() < k {
        let weights: Vec<f64> = d2.clone();
        let next = match weighted_choice(&weights, rng) {
            Some(i) => i,
            // All points coincide with an existing seed: pick any unused.
            None => match (0..n).find(|i| !seeds.contains(i)) {
                Some(i) => i,
                None => break,
            },
        };
        seeds.push(next);
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, &points[next]);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    seeds
}

/// Run k-means over `points` (k-means++ seeded Lloyd iterations).
///
/// Empty clusters are re-seeded with the point farthest from its centroid,
/// so exactly `min(k, n)` non-degenerate clusters come out for distinct
/// inputs.
pub fn kmeans<R: Rng>(points: &[Vec<f32>], cfg: &KMeansConfig, rng: &mut R) -> KMeansResult {
    let n = points.len();
    if n == 0 || cfg.k == 0 {
        return KMeansResult {
            assignment: Vec::new(),
            centroids: Vec::new(),
            iterations: 0,
            inertia: 0.0,
        };
    }
    let dim = points[0].len();
    let k = cfg.k.min(n);
    let seeds = kmeans_pp_seeds(points, k, rng);
    let mut centroids: Vec<Vec<f32>> = seeds.iter().map(|&i| points[i].clone()).collect();
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..cfg.max_iterations {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            // `total_cmp` tolerates NaN distances; `unwrap_or(0)` covers the
            // degenerate k = 0 case without a panicking path.
            let best = (0..centroids.len())
                .min_by(|&a, &b| sq_dist(p, &centroids[a]).total_cmp(&sq_dist(p, &centroids[b])))
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i]].iter_mut().zip(p) {
                *s += x as f64;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (ci, &s) in c.iter_mut().zip(sum) {
                    *ci = (s / count as f64) as f32;
                }
            }
        }
        // Re-seed empty clusters with the worst-fit point.
        for c in 0..centroids.len() {
            if counts[c] == 0 {
                if let Some((i, _)) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, sq_dist(p, &centroids[assignment[i]])))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                {
                    centroids[c] = points[i].clone();
                    assignment[i] = c;
                }
            }
        }
    }
    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeansResult {
        assignment,
        centroids,
        iterations,
        inertia,
    }
}

/// Group point indices by cluster id, dropping empty clusters; output
/// clusters are sorted by smallest member for determinism.
pub fn as_clusters(assignment: &[usize], k: usize) -> Vec<Vec<u32>> {
    let mut clusters = vec![Vec::new(); k];
    for (i, &a) in assignment.iter().enumerate() {
        clusters[a].push(i as u32);
    }
    clusters.retain(|c| !c.is_empty());
    clusters.sort_by_key(|c| c[0]);
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + (i % 3) as f32 * 0.01, 0.0]);
            pts.push(vec![5.0 + (i % 3) as f32 * 0.01, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                max_iterations: 50,
            },
            &mut rng,
        );
        // All even-indexed points (blob A) share a cluster; odds share the other.
        let a = r.assignment[0];
        let b = r.assignment[1];
        assert_ne!(a, b);
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(r.assignment[i], a);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(r.assignment[i], b);
        }
        assert!(r.inertia < 0.1);
    }

    #[test]
    fn k_capped_at_n() {
        let pts = vec![vec![0.0f32], vec![1.0]];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 10,
                max_iterations: 10,
            },
            &mut rng,
        );
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn seeds_are_distinct_for_distinct_points() {
        let pts = two_blobs();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let seeds = kmeans_pp_seeds(&pts, 2, &mut rng);
        assert_eq!(seeds.len(), 2);
        assert_ne!(pts[seeds[0]], pts[seeds[1]]);
    }

    #[test]
    fn identical_points_degenerate() {
        let pts = vec![vec![1.0f32, 1.0]; 5];
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let seeds = kmeans_pp_seeds(&pts, 3, &mut rng);
        assert_eq!(seeds.len(), 3); // falls back to unused indices
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                max_iterations: 10,
            },
            &mut rng,
        );
        assert_eq!(r.assignment.len(), 5);
    }

    #[test]
    fn empty_input() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let r = kmeans(&[], &KMeansConfig::default(), &mut rng);
        assert!(r.assignment.is_empty());
    }

    #[test]
    fn as_clusters_groups_and_drops_empty() {
        let clusters = as_clusters(&[0, 2, 0, 2], 4);
        assert_eq!(clusters, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = two_blobs();
        let r1 = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                max_iterations: 20,
            },
            &mut rand::rngs::StdRng::seed_from_u64(9),
        );
        let r2 = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                max_iterations: 20,
            },
            &mut rand::rngs::StdRng::seed_from_u64(9),
        );
        assert_eq!(r1.assignment, r2.assignment);
    }
}
