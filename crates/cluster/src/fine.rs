//! Fine clustering (Algorithm 3).
//!
//! Clusters larger than the threshold `N` are recursively split in two by
//! MCCS (or MCS) seed dissimilarity: a first seed is drawn at random, the
//! graph most dissimilar to it becomes the second seed, and every remaining
//! graph joins the seed it is more similar to. Newly produced clusters
//! still exceeding `N` go back on the work list.
//!
//! Every MCS/MCCS call runs under the configured [`SearchBudget`] and its
//! [`Completeness`] is recorded: when a search is cut short, its truncated
//! common subgraph is *not* treated as the true MCS — the split decision
//! falls back to an exact label-multiset similarity instead, and the
//! degradation is surfaced in [`FineOutcome::kernel`].

use catapult_graph::mcs::{mcs, McsConfig};
use catapult_graph::{Graph, SearchBudget, Tally, TallyCounts};
use rand::Rng;
use rayon::prelude::*;

/// Which common-subgraph similarity drives the split (Exp 1 compares both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimilarityKind {
    /// Maximum common subgraph (`ω_mcs`).
    Mcs,
    /// Maximum *connected* common subgraph (`ω_mccs`, the paper's choice).
    Mccs,
}

/// Parameters for fine clustering.
#[derive(Clone, Debug)]
pub struct FineConfig {
    /// Maximum cluster size `N`.
    pub max_cluster_size: usize,
    /// Similarity measure for seed splitting.
    pub similarity: SimilarityKind,
    /// Execution budget for each MCS/MCCS computation (node cap defaulting
    /// to 100k expansions per search).
    pub budget: SearchBudget,
}

impl Default for FineConfig {
    fn default() -> Self {
        FineConfig {
            max_cluster_size: 20,
            similarity: SimilarityKind::Mccs,
            budget: SearchBudget::nodes(DEFAULT_MCS_CAP),
        }
    }
}

/// Default per-search node cap for fine-clustering MCS/MCCS calls.
pub const DEFAULT_MCS_CAP: u64 = 100_000;

/// Exact, cheap fallback similarity: vertex-label multiset intersection
/// over the larger vertex count. Used for split decisions whose MCS/MCCS
/// search was cut short — a truncated common subgraph systematically
/// understates similarity, which would bias seed selection toward the
/// pairs that happened to hit the budget.
fn label_vector_similarity(a: &Graph, b: &Graph) -> f64 {
    let denom = a.vertex_count().max(b.vertex_count());
    if denom == 0 {
        return 0.0;
    }
    let mut la = a.labels().to_vec();
    let mut lb = b.labels().to_vec();
    la.sort_unstable();
    lb.sort_unstable();
    let (mut i, mut j, mut common) = (0, 0, 0usize);
    while i < la.len() && j < lb.len() {
        match la[i].cmp(&lb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common as f64 / denom as f64
}

/// MCS/MCCS similarity under the configured budget, recording kernel
/// completeness into `tally`. Exact searches return the paper's
/// `ω = |G_mcs| / min(|E1|, |E2|)`; degraded searches fall back to
/// [`label_vector_similarity`] so a truncated MCS is never mistaken for
/// the true one.
fn similarity(a: &Graph, b: &Graph, cfg: &FineConfig, tally: &Tally) -> f64 {
    let denom = a.edge_count().min(b.edge_count());
    if denom == 0 {
        return 0.0;
    }
    let mcfg = McsConfig {
        connected: cfg.similarity == SimilarityKind::Mccs,
        budget: cfg.budget.with_default_cap(DEFAULT_MCS_CAP),
    };
    let r = mcs(a, b, mcfg);
    tally.record(r.completeness);
    if r.completeness.is_exact() {
        r.edges as f64 / denom as f64
    } else {
        label_vector_similarity(a, b)
    }
}

/// Split one oversized cluster into two by seed dissimilarity
/// (Algorithm 3, lines 6–21).
fn split_cluster<R: Rng>(
    db: &[Graph],
    cluster: &[u32],
    cfg: &FineConfig,
    rng: &mut R,
    tally: &Tally,
) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(cluster.len() >= 2);
    let seed1 = cluster[rng.gen_range(0..cluster.len())];
    let rest: Vec<u32> = cluster.iter().copied().filter(|&g| g != seed1).collect();
    // ω(G, Seed1) for every remaining graph. Parallel audit: `rng` is NOT
    // captured (seeds were drawn before the fan-out), the closure reads
    // only shared state plus the commutative `Tally`, and ordered
    // collection keeps `omega1[i]` aligned with `rest[i]` — identical
    // across thread counts.
    let omega1: Vec<f64> = rest
        .par_iter()
        .map(|&g| similarity(&db[g as usize], &db[seed1 as usize], cfg, tally))
        .collect();
    // Second seed: the most dissimilar graph (deterministic tie-break on id).
    // Callers split only oversized clusters (`> max_cluster_size ≥ 1`), so
    // `rest` — and with it `omega1` — is never empty here. `total_cmp`
    // keeps the selection well-defined even if a similarity turned NaN.
    #[allow(clippy::expect_used)]
    let (seed2_pos, _) = omega1
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(rest[a.0].cmp(&rest[b.0])))
        .expect("cluster has at least two members");
    let seed2 = rest[seed2_pos];

    let mut c1 = vec![seed1];
    let mut c2 = vec![seed2];
    let omega2: Vec<f64> = rest
        .par_iter()
        .map(|&g| {
            if g == seed2 {
                f64::INFINITY
            } else {
                similarity(&db[g as usize], &db[seed2 as usize], cfg, tally)
            }
        })
        .collect();
    for (i, &g) in rest.iter().enumerate() {
        if g == seed2 {
            continue;
        }
        if omega1[i] > omega2[i] {
            c1.push(g);
        } else {
            c2.push(g);
        }
    }
    c1.sort_unstable();
    c2.sort_unstable();
    (c1, c2)
}

/// Result of a fine-clustering run: the clusters plus an audit of every
/// MCS/MCCS kernel call made while splitting.
#[derive(Clone, Debug)]
pub struct FineOutcome {
    /// The final clusters, each at most `max_cluster_size` graphs.
    pub clusters: Vec<Vec<u32>>,
    /// Completeness counts over all MCS/MCCS calls; non-exact calls had
    /// their split decisions made by the label-vector fallback.
    pub kernel: TallyCounts,
}

/// Run Algorithm 3: split every cluster larger than `N` until all clusters
/// fit (or a cluster refuses to shrink, in which case it is cut in half
/// deterministically to guarantee termination — this only happens when all
/// members are identical). Unaudited convenience wrapper around
/// [`fine_cluster_audited`].
pub fn fine_cluster<R: Rng>(
    db: &[Graph],
    clusters: Vec<Vec<u32>>,
    cfg: &FineConfig,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    fine_cluster_audited(db, clusters, cfg, rng).clusters
}

/// As [`fine_cluster`], also reporting per-kernel-call completeness.
pub fn fine_cluster_audited<R: Rng>(
    db: &[Graph],
    clusters: Vec<Vec<u32>>,
    cfg: &FineConfig,
    rng: &mut R,
) -> FineOutcome {
    let n = cfg.max_cluster_size;
    let tally = Tally::new();
    let mut done: Vec<Vec<u32>> = Vec::new();
    let mut work: Vec<Vec<u32>> = Vec::new();
    for c in clusters {
        if c.len() > n {
            work.push(c);
        } else if !c.is_empty() {
            done.push(c);
        }
    }
    while let Some(cluster) = work.pop() {
        let (c1, c2) = split_cluster(db, &cluster, cfg, rng, &tally);
        for mut c in [c1, c2] {
            if c.len() == cluster.len() {
                // Degenerate split (all graphs identical): halve by index.
                let tail = c.split_off(c.len() / 2);
                for piece in [c, tail] {
                    if piece.len() > n {
                        work.push(piece);
                    } else if !piece.is_empty() {
                        done.push(piece);
                    }
                }
                break;
            }
            if c.len() > n {
                work.push(c);
            } else if !c.is_empty() {
                done.push(c);
            }
        }
    }
    done.sort_by_key(|c| c[0]);
    FineOutcome {
        clusters: done,
        kernel: tally.counts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};
    use rand::SeedableRng;

    fn ring(n: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(0));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(0));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    #[test]
    fn splits_until_under_threshold() {
        let db: Vec<Graph> = (0..12)
            .map(|i| if i % 2 == 0 { ring(6) } else { chain(6) })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = FineConfig {
            max_cluster_size: 4,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..12).collect()], &cfg, &mut rng);
        assert!(out.iter().all(|c| c.len() <= 4));
        let mut all: Vec<u32> = out.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn small_clusters_untouched() {
        let db: Vec<Graph> = (0..4).map(|_| ring(5)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let cfg = FineConfig {
            max_cluster_size: 10,
            ..Default::default()
        };
        let input = vec![vec![0, 1], vec![2, 3]];
        let out = fine_cluster(&db, input.clone(), &cfg, &mut rng);
        assert_eq!(out, input);
    }

    #[test]
    fn identical_graphs_terminate() {
        let db: Vec<Graph> = (0..9).map(|_| ring(5)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg = FineConfig {
            max_cluster_size: 2,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..9).collect()], &cfg, &mut rng);
        assert!(out.iter().all(|c| c.len() <= 2));
        assert_eq!(out.iter().map(Vec::len).sum::<usize>(), 9);
    }

    #[test]
    fn exact_run_reports_all_exact_kernels() {
        let db: Vec<Graph> = (0..12)
            .map(|i| if i % 2 == 0 { ring(6) } else { chain(6) })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = FineConfig {
            max_cluster_size: 4,
            ..Default::default()
        };
        let out = fine_cluster_audited(&db, vec![(0..12).collect()], &cfg, &mut rng);
        assert!(out.kernel.total() > 0);
        assert!(out.kernel.all_exact());
        assert!(out.clusters.iter().all(|c| c.len() <= 4));
    }

    #[test]
    fn truncated_mcs_is_surfaced_not_trusted() {
        // A 2-node MCS budget trips on every non-trivial pair: the audit
        // must report the degradation, and the partition must still be
        // valid (fallback similarity decides the splits).
        let db: Vec<Graph> = (0..12)
            .map(|i| if i % 2 == 0 { ring(6) } else { chain(6) })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = FineConfig {
            max_cluster_size: 4,
            budget: catapult_graph::SearchBudget::nodes(2),
            ..Default::default()
        };
        let out = fine_cluster_audited(&db, vec![(0..12).collect()], &cfg, &mut rng);
        assert!(out.kernel.degraded() > 0, "budget trips must be recorded");
        assert!(out.clusters.iter().all(|c| c.len() <= 4));
        let mut all: Vec<u32> = out.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn label_fallback_is_exact_and_bounded() {
        let a = ring(6);
        let b = chain(4);
        let s = label_vector_similarity(&a, &b);
        // 4 common unlabeled vertices over max(6, 4).
        assert!((s - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(label_vector_similarity(&Graph::new(), &Graph::new()), 0.0);
    }

    #[test]
    fn mccs_split_separates_topology_families() {
        // 6 rings and 6 chains: after one split, rings should mostly stay
        // together (high MCCS sim to a ring seed).
        let db: Vec<Graph> = (0..6)
            .map(|_| ring(6))
            .chain((0..6).map(|_| chain(6)))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let cfg = FineConfig {
            max_cluster_size: 6,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..12).collect()], &cfg, &mut rng);
        // A ring and a chain of 6 have MCCS of 5 edges (ring minus an edge is
        // a chain): similarity 5/5... wait, min(|E|) = min(6,5)=5 → 1.0.
        // Even so the partition must be valid.
        let mut all: Vec<u32> = out.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 12);
    }
}
