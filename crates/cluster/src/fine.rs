//! Fine clustering (Algorithm 3).
//!
//! Clusters larger than the threshold `N` are recursively split in two by
//! MCCS (or MCS) seed dissimilarity: a first seed is drawn at random, the
//! graph most dissimilar to it becomes the second seed, and every remaining
//! graph joins the seed it is more similar to. Newly produced clusters
//! still exceeding `N` go back on the work list.
//!
//! Every MCS/MCCS call runs under the configured [`SearchBudget`] and its
//! [`Completeness`] is recorded: when a search is cut short, its truncated
//! common subgraph is *not* treated as the true MCS — the split decision
//! falls back to an exact label-multiset similarity instead, and the
//! degradation is surfaced in [`FineOutcome::kernel`].
//!
//! Similarities are memoized per *isomorphism class* ([`SimCache`]):
//! DB graphs are interned by canonical form, one MCS/MCCS runs per
//! unordered class pair (on the class representatives), and every other
//! member pair replays the cached value and completeness tag. The cache
//! persists through the fine-state checkpoint, so a resumed run reuses
//! instead of recomputing.

use crate::ckpt_io::{
    decode_fine_state, encode_fine_state, CacheEntry, FineState, NoSnap, SnapRng, SplitProgress,
};
use catapult_ckpt::{CkptError, StageStore};
use catapult_graph::canonical::{canonical_form, CanonTokens};
use catapult_graph::mcs::{mcs, McsConfig};
use catapult_graph::{Completeness, Graph, SearchBudget, Tally, TallyCounts};
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError}; // xtask-allow: interior-mutability

/// Which common-subgraph similarity drives the split (Exp 1 compares both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimilarityKind {
    /// Maximum common subgraph (`ω_mcs`).
    Mcs,
    /// Maximum *connected* common subgraph (`ω_mccs`, the paper's choice).
    Mccs,
}

/// Parameters for fine clustering.
#[derive(Clone, Debug)]
pub struct FineConfig {
    /// Maximum cluster size `N`.
    pub max_cluster_size: usize,
    /// Similarity measure for seed splitting.
    pub similarity: SimilarityKind,
    /// Execution budget for each MCS/MCCS computation (node cap defaulting
    /// to 100k expansions per search).
    pub budget: SearchBudget,
    /// Supervised execution: isolate a panicking similarity worker to its
    /// item instead of aborting the fan-out. The isolated item is tagged
    /// [`Completeness::Degraded`] and its split decision falls back to the
    /// panic-free label-vector similarity. Off (fail-fast) by default.
    pub keep_going: bool,
}

impl Default for FineConfig {
    fn default() -> Self {
        FineConfig {
            max_cluster_size: 20,
            similarity: SimilarityKind::Mccs,
            budget: SearchBudget::nodes(DEFAULT_MCS_CAP),
            keep_going: false,
        }
    }
}

/// Default per-search node cap for fine-clustering MCS/MCCS calls.
pub const DEFAULT_MCS_CAP: u64 = 100_000;

/// Exact, cheap fallback similarity: vertex-label multiset intersection
/// over the larger vertex count. Used for split decisions whose MCS/MCCS
/// search was cut short — a truncated common subgraph systematically
/// understates similarity, which would bias seed selection toward the
/// pairs that happened to hit the budget.
fn label_vector_similarity(a: &Graph, b: &Graph) -> f64 {
    let denom = a.vertex_count().max(b.vertex_count());
    if denom == 0 {
        return 0.0;
    }
    let mut la = a.labels().to_vec();
    let mut lb = b.labels().to_vec();
    la.sort_unstable();
    lb.sort_unstable();
    let (mut i, mut j, mut common) = (0, 0, 0usize);
    while i < la.len() && j < lb.len() {
        match la[i].cmp(&lb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common as f64 / denom as f64
}

/// One MCS/MCCS similarity computation under the configured budget,
/// *without* memoization or tally recording. Exact searches return the
/// paper's `ω = |G_mcs| / min(|E1|, |E2|)`; degraded searches fall back
/// to [`label_vector_similarity`] so a truncated MCS is never mistaken
/// for the true one. The completeness tag is returned alongside the
/// value so cache hits can replay it into the tally.
fn raw_similarity(a: &Graph, b: &Graph, cfg: &FineConfig) -> (f64, Completeness) {
    let denom = a.edge_count().min(b.edge_count());
    if denom == 0 {
        return (0.0, Completeness::Exact);
    }
    let mcfg = McsConfig {
        connected: cfg.similarity == SimilarityKind::Mccs,
        budget: cfg.budget.with_default_cap(DEFAULT_MCS_CAP),
        pruning: true,
    };
    let r = mcs(a, b, mcfg);
    let value = if r.completeness.is_exact() {
        r.edges as f64 / denom as f64
    } else {
        label_vector_similarity(a, b)
    };
    (value, r.completeness)
}

/// Memoized pairwise-similarity matrix, keyed by *isomorphism class*:
/// every DB graph is interned by its canonical form
/// ([`catapult_graph::canonical::canonical_form`]), and one similarity
/// value is computed — on the class representatives — per unordered
/// class pair, no matter how many member pairs ask for it.
///
/// Determinism: class ids are assigned in first-seen DB order and the
/// representative is the lowest DB index of each class, so the cache's
/// keying, the inputs of every cached computation, and therefore every
/// cached value are pure functions of the DB — independent of thread
/// count, lookup interleaving, and resume point. Each lookup records
/// the pair's (deterministic) completeness tag into the tally whether
/// it hit or missed, so [`TallyCounts`] stay identical to an unmemoized
/// schedule of the same lookups. Two racing workers may both compute
/// the same miss — the duplicated work only shifts the hit/miss probe
/// counters, never a value or a tally count.
pub(crate) struct SimCache {
    /// DB index → isomorphism-class id (dense, first-seen order).
    class_of: Vec<u32>,
    /// Class id → lowest DB index of that class; all cached values are
    /// computed on these representatives.
    rep_of: Vec<u32>,
    /// Unordered class pair `(lo, hi)` → (similarity, completeness).
    /// `BTreeMap` so snapshots serialize in key order byte-identically.
    /// Writes are value-deterministic (every worker computes the same
    /// similarity for a class pair), so insertion order cannot change
    /// any cached value. xtask-allow: interior-mutability
    entries: Mutex<BTreeMap<(u32, u32), (f64, Completeness)>>,
}

impl SimCache {
    /// Intern every DB graph's canonical form. Graphs whose canonical
    /// form hit the refinement work cap get a fallback form that may
    /// split one true class into several — that only reduces sharing,
    /// never correctness.
    pub(crate) fn build(db: &[Graph]) -> SimCache {
        let mut ids: BTreeMap<CanonTokens, u32> = BTreeMap::new();
        let mut class_of = Vec::with_capacity(db.len());
        let mut rep_of: Vec<u32> = Vec::new();
        for (i, g) in db.iter().enumerate() {
            let form = canonical_form(g);
            let id = match ids.get(&form) {
                Some(&id) => id,
                None => {
                    let id = u32::try_from(rep_of.len()).unwrap_or(u32::MAX);
                    ids.insert(form, id);
                    rep_of.push(u32::try_from(i).unwrap_or(u32::MAX));
                    id
                }
            };
            class_of.push(id);
        }
        SimCache {
            class_of,
            rep_of,
            entries: Mutex::new(BTreeMap::new()), // xtask-allow: interior-mutability
        }
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<(u32, u32), (f64, Completeness)>> {
        // A poisoned lock only means some worker panicked after a plain
        // insert/read; the map itself is always in a consistent state.
        // xtask-allow: taint -- keyed BTreeMap cache: inserts commute and snapshots read it sorted
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Prefill from a checkpoint snapshot. Entries whose class ids fall
    /// outside this DB's class space (impossible unless the checkpoint
    /// belongs to a different DB, which the store fingerprint already
    /// rules out) are dropped rather than trusted.
    pub(crate) fn seed(&self, entries: &[CacheEntry]) {
        let classes = self.rep_of.len();
        let mut map = self.lock();
        for &(a, b, value, tag) in entries {
            if (a as usize) < classes && (b as usize) < classes {
                map.insert((a, b), (value, tag));
            }
        }
    }

    /// Sorted, serialization-ready view of every cached entry.
    pub(crate) fn snapshot(&self) -> Vec<CacheEntry> {
        self.lock()
            .iter()
            .map(|(&(a, b), &(value, tag))| (a, b, value, tag))
            .collect()
    }

    /// The isomorphism-class id of DB graph `g` (test hook for the
    /// equal-canonical-forms-share-an-entry property).
    #[cfg(test)]
    pub(crate) fn class_of(&self, g: u32) -> u32 {
        self.class_of[g as usize]
    }
}

/// Memoized MCS/MCCS similarity between DB graphs `g` and `seed`,
/// recording kernel completeness into `tally` on hits and misses alike.
fn similarity(
    g: u32,
    seed: u32,
    db: &[Graph],
    cache: &SimCache,
    cfg: &FineConfig,
    tally: &Tally,
) -> f64 {
    let (a, b) = (&db[g as usize], &db[seed as usize]);
    if a.edge_count().min(b.edge_count()) == 0 {
        // Same as the unmemoized path: nothing to search, nothing to record.
        return 0.0;
    }
    let (ca, cb) = (cache.class_of[g as usize], cache.class_of[seed as usize]);
    let key = (ca.min(cb), ca.max(cb));
    if let Some((value, tag)) = cache.lock().get(&key).copied() {
        tally.record(tag);
        cfg.budget.probe.add("mcs", "cache_hits", 1);
        return value;
    }
    cfg.budget.probe.add("mcs", "cache_misses", 1);
    let ra = &db[cache.rep_of[key.0 as usize] as usize];
    let rb = &db[cache.rep_of[key.1 as usize] as usize];
    let (value, tag) = raw_similarity(ra, rb, cfg);
    tally.record(tag);
    // The tag is stored, not consumed, and replayed into the caller's
    // tally on every later hit; the single cache lock nests inside no
    // other lock. xtask-allow: completeness-flow, lock-order
    cache.lock().insert(key, (value, tag));
    value
}

/// ω(G, `seed`) for each of `targets` (∞ for the seed itself, so it can
/// never be pulled away from its own side).
///
/// Parallel audit: no RNG is captured (seeds were drawn before the
/// fan-out), the closure reads only shared state plus the commutative
/// `Tally`, and ordered collection keeps result `[i]` aligned with
/// `targets[i]` — identical across thread counts. With `keep_going`,
/// each item runs isolated: a panicking worker loses only its own
/// entry, which is tagged [`Completeness::Degraded`] and falls back to
/// the panic-free label-vector similarity.
fn omega_chunk(
    db: &[Graph],
    targets: &[u32],
    seed: u32,
    cfg: &FineConfig,
    tally: &Tally,
    cache: &SimCache,
) -> Vec<f64> {
    let compute = |&g: &u32| {
        if g == seed {
            f64::INFINITY
        } else {
            similarity(g, seed, db, cache, cfg, tally)
        }
    };
    if !cfg.keep_going {
        return targets.par_iter().map(compute).collect();
    }
    targets
        .par_iter()
        .map(compute)
        .collect_isolated()
        .into_iter()
        .zip(targets)
        .map(|(r, &g)| match r {
            Ok(v) => v,
            Err(_panic) => {
                tally.record(Completeness::Degraded);
                label_vector_similarity(&db[g as usize], &db[seed as usize])
            }
        })
        .collect()
}

/// Split one oversized cluster into two by seed dissimilarity
/// (Algorithm 3, lines 6–21), continuing from — and checkpointing via
/// `flush` — the similarity rows already in `progress`.
fn resume_split(
    db: &[Graph],
    cfg: &FineConfig,
    tally: &Tally,
    cache: &SimCache,
    progress: &mut SplitProgress,
    chunk: usize,
    flush: &mut dyn FnMut(&SplitProgress) -> Result<(), CkptError>,
) -> Result<(Vec<u32>, Vec<u32>), CkptError> {
    debug_assert!(progress.cluster.len() >= 2);
    let seed1 = progress.seed1;
    let rest: Vec<u32> = progress
        .cluster
        .iter()
        .copied()
        .filter(|&g| g != seed1)
        .collect();
    // ω(G, Seed1) for every remaining graph, `chunk` rows per
    // checkpoint flush. Chunking cannot change the values — every row
    // is computed independently — so chunked and monolithic runs agree.
    while progress.omega1.len() < rest.len() {
        let lo = progress.omega1.len();
        let hi = lo.saturating_add(chunk).min(rest.len());
        let vals = omega_chunk(db, &rest[lo..hi], seed1, cfg, tally, cache);
        progress.omega1.extend(vals);
        flush(progress)?;
    }
    // Second seed: the most dissimilar graph (deterministic tie-break on id).
    // Callers split only oversized clusters (`> max_cluster_size ≥ 1`), so
    // `rest` — and with it `omega1` — is never empty here. `total_cmp`
    // keeps the selection well-defined even if a similarity turned NaN.
    #[allow(clippy::expect_used)]
    let (seed2_pos, _) = progress
        .omega1
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(rest[a.0].cmp(&rest[b.0])))
        .expect("cluster has at least two members");
    let seed2 = rest[seed2_pos];

    while progress.omega2.len() < rest.len() {
        let lo = progress.omega2.len();
        let hi = lo.saturating_add(chunk).min(rest.len());
        let vals = omega_chunk(db, &rest[lo..hi], seed2, cfg, tally, cache);
        progress.omega2.extend(vals);
        flush(progress)?;
    }
    let mut c1 = vec![seed1];
    let mut c2 = vec![seed2];
    for (i, &g) in rest.iter().enumerate() {
        if g == seed2 {
            continue;
        }
        if progress.omega1[i] > progress.omega2[i] {
            c1.push(g);
        } else {
            c2.push(g);
        }
    }
    c1.sort_unstable();
    c2.sort_unstable();
    Ok((c1, c2))
}

/// Result of a fine-clustering run: the clusters plus an audit of every
/// MCS/MCCS kernel call made while splitting.
#[derive(Clone, Debug)]
pub struct FineOutcome {
    /// The final clusters, each at most `max_cluster_size` graphs.
    pub clusters: Vec<Vec<u32>>,
    /// Completeness counts over all MCS/MCCS calls; non-exact calls had
    /// their split decisions made by the label-vector fallback.
    pub kernel: TallyCounts,
}

/// Run Algorithm 3: split every cluster larger than `N` until all clusters
/// fit (or a cluster refuses to shrink, in which case it is cut in half
/// deterministically to guarantee termination — this only happens when all
/// members are identical). Unaudited convenience wrapper around
/// [`fine_cluster_audited`].
pub fn fine_cluster<R: Rng>(
    db: &[Graph],
    clusters: Vec<Vec<u32>>,
    cfg: &FineConfig,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    fine_cluster_audited(db, clusters, cfg, rng).clusters
}

/// As [`fine_cluster`], also reporting per-kernel-call completeness.
pub fn fine_cluster_audited<R: Rng>(
    db: &[Graph],
    clusters: Vec<Vec<u32>>,
    cfg: &FineConfig,
    rng: &mut R,
) -> FineOutcome {
    match fine_inner(db, clusters, cfg, &mut NoSnap(rng), None) {
        Ok(out) => out,
        // A store-free run performs no checkpoint I/O and cannot fail.
        Err(_) => unreachable!("checkpoint-free fine clustering cannot fail"),
    }
}

/// As [`fine_cluster_audited`], checkpointing progress into `store`'s
/// `fine` slot every [`StageStore::chunk_pairs`] similarity rows and —
/// when the store is resuming — continuing from any compatible `fine`
/// checkpoint already on disk, mid-split included. Given the same seed
/// and inputs, an interrupted-then-resumed run returns exactly what the
/// uninterrupted run would have.
pub fn fine_cluster_resumable(
    db: &[Graph],
    clusters: Vec<Vec<u32>>,
    cfg: &FineConfig,
    rng: &mut StdRng,
    store: &StageStore,
) -> Result<FineOutcome, CkptError> {
    fine_inner(db, clusters, cfg, rng, Some(store))
}

/// Flush the fine stage's state to the store (no-op without one, or
/// when the RNG cannot snapshot — the two always coincide).
#[allow(clippy::too_many_arguments)]
fn write_state(
    store: Option<&StageStore>,
    seq: &mut u64,
    done: &[Vec<u32>],
    work: &[Vec<u32>],
    rng: Option<[u64; 4]>,
    tally: TallyCounts,
    current: Option<&SplitProgress>,
    cache: &SimCache,
) -> Result<(), CkptError> {
    let (Some(st), Some(rng)) = (store, rng) else {
        return Ok(());
    };
    let state = FineState {
        done: done.to_vec(),
        work: work.to_vec(),
        rng,
        tally,
        current: current.cloned(),
        cache: cache.snapshot(),
    };
    st.save("fine", *seq, &encode_fine_state(&state))?;
    *seq += 1;
    Ok(())
}

/// The shared engine behind [`fine_cluster_audited`] and
/// [`fine_cluster_resumable`] (and the pipeline's store-aware fine
/// stage).
pub(crate) fn fine_inner<R: SnapRng>(
    db: &[Graph],
    clusters: Vec<Vec<u32>>,
    cfg: &FineConfig,
    rng: &mut R,
    store: Option<&StageStore>,
) -> Result<FineOutcome, CkptError> {
    let n = cfg.max_cluster_size;
    let tally = Tally::new();
    // Counts restored from a checkpoint; this process's own records live
    // in `tally` and the two are merged at every flush and at the end.
    let mut baseline = TallyCounts::default();
    let mut done: Vec<Vec<u32>> = Vec::new();
    let mut work: Vec<Vec<u32>> = Vec::new();
    let mut current: Option<SplitProgress> = None;
    let mut restored_cache: Vec<CacheEntry> = Vec::new();
    let mut seq: u64 = 0;
    let mut resumed = false;
    if let Some(st) = store {
        if let Some((loaded_seq, payload)) = st.load("fine")? {
            match decode_fine_state(&payload) {
                Ok(state) => {
                    done = state.done;
                    work = state.work;
                    rng.restore(state.rng);
                    baseline = state.tally;
                    current = state.current;
                    restored_cache = state.cache;
                    seq = loaded_seq + 1;
                    resumed = true;
                }
                Err(e) => {
                    // Checksummed but undecodable: schema drift within a
                    // version. Recomputing is safe; reusing is not.
                    catapult_obs::warn(format!(
                        "discarding undecodable fine checkpoint ({e}); \
                         recomputing stage `fine`"
                    ));
                    st.discard("fine")?;
                }
            }
        }
    }
    if !resumed {
        for c in clusters {
            if c.len() > n {
                work.push(c);
            } else if !c.is_empty() {
                done.push(c);
            }
        }
    }
    // Progress accounting (`--progress` ETA): each cluster in the queue
    // is one item; a split retires its input and enqueues its halves, so
    // the total grows by the extra pieces as the run discovers them.
    let items = &cfg.budget.probe;
    items.add(
        "items",
        "total",
        (done.len() + work.len() + usize::from(current.is_some())) as u64,
    );
    items.add("items", "done", done.len() as u64);
    let chunk = store.map_or(usize::MAX, StageStore::chunk_pairs);
    // Memoized similarity matrix, shared across every split this run
    // performs and — through the checkpoint — across resumes, so no
    // class pair's MCS is ever computed twice.
    let cache = SimCache::build(db);
    cache.seed(&restored_cache);
    loop {
        let mut progress = match current.take() {
            Some(p) => p,
            None => match work.pop() {
                None => break,
                Some(cluster) => {
                    let seed1 = cluster[rng.gen_range(0..cluster.len())];
                    SplitProgress {
                        cluster,
                        seed1,
                        omega1: Vec::new(),
                        omega2: Vec::new(),
                    }
                }
            },
        };
        // The RNG is untouched for the rest of the split, so this
        // post-draw snapshot stays valid for every mid-split flush.
        let rng_state = rng.snapshot();
        write_state(
            store,
            &mut seq,
            &done,
            &work,
            rng_state,
            baseline.merge(tally.counts()),
            Some(&progress),
            &cache,
        )?;
        let (c1, c2) = resume_split(db, cfg, &tally, &cache, &mut progress, chunk, &mut |p| {
            write_state(
                store,
                &mut seq,
                &done,
                &work,
                rng_state,
                baseline.merge(tally.counts()),
                Some(p),
                &cache,
            )
        })?;
        let cluster_len = progress.cluster.len();
        let (work_before, done_before) = (work.len(), done.len());
        for mut c in [c1, c2] {
            if c.len() == cluster_len {
                // Degenerate split (all graphs identical): halve by index.
                let tail = c.split_off(c.len() / 2);
                for piece in [c, tail] {
                    if piece.len() > n {
                        work.push(piece);
                    } else if !piece.is_empty() {
                        done.push(piece);
                    }
                }
                break;
            }
            if c.len() > n {
                work.push(c);
            } else if !c.is_empty() {
                done.push(c);
            }
        }
        // One input retired, `pushed` pieces enqueued: the known total
        // grows by the difference, and finished pieces count as done.
        let pushed = (work.len() - work_before) + (done.len() - done_before);
        items.add("items", "total", pushed.saturating_sub(1) as u64);
        items.add("items", "done", (done.len() - done_before) as u64);
        write_state(
            store,
            &mut seq,
            &done,
            &work,
            rng.snapshot(),
            baseline.merge(tally.counts()),
            None,
            &cache,
        )?;
    }
    done.sort_by_key(|c| c[0]);
    Ok(FineOutcome {
        clusters: done,
        kernel: baseline.merge(tally.counts()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};
    use rand::SeedableRng;

    fn ring(n: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(0));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(0));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    #[test]
    fn splits_until_under_threshold() {
        let db: Vec<Graph> = (0..12)
            .map(|i| if i % 2 == 0 { ring(6) } else { chain(6) })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = FineConfig {
            max_cluster_size: 4,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..12).collect()], &cfg, &mut rng);
        assert!(out.iter().all(|c| c.len() <= 4));
        let mut all: Vec<u32> = out.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn small_clusters_untouched() {
        let db: Vec<Graph> = (0..4).map(|_| ring(5)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let cfg = FineConfig {
            max_cluster_size: 10,
            ..Default::default()
        };
        let input = vec![vec![0, 1], vec![2, 3]];
        let out = fine_cluster(&db, input.clone(), &cfg, &mut rng);
        assert_eq!(out, input);
    }

    #[test]
    fn identical_graphs_terminate() {
        let db: Vec<Graph> = (0..9).map(|_| ring(5)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg = FineConfig {
            max_cluster_size: 2,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..9).collect()], &cfg, &mut rng);
        assert!(out.iter().all(|c| c.len() <= 2));
        assert_eq!(out.iter().map(Vec::len).sum::<usize>(), 9);
    }

    #[test]
    fn exact_run_reports_all_exact_kernels() {
        let db: Vec<Graph> = (0..12)
            .map(|i| if i % 2 == 0 { ring(6) } else { chain(6) })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = FineConfig {
            max_cluster_size: 4,
            ..Default::default()
        };
        let out = fine_cluster_audited(&db, vec![(0..12).collect()], &cfg, &mut rng);
        assert!(out.kernel.total() > 0);
        assert!(out.kernel.all_exact());
        assert!(out.clusters.iter().all(|c| c.len() <= 4));
    }

    #[test]
    fn truncated_mcs_is_surfaced_not_trusted() {
        // A 2-node MCS budget trips on every non-trivial pair: the audit
        // must report the degradation, and the partition must still be
        // valid (fallback similarity decides the splits).
        let db: Vec<Graph> = (0..12)
            .map(|i| if i % 2 == 0 { ring(6) } else { chain(6) })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = FineConfig {
            max_cluster_size: 4,
            budget: catapult_graph::SearchBudget::nodes(2),
            ..Default::default()
        };
        let out = fine_cluster_audited(&db, vec![(0..12).collect()], &cfg, &mut rng);
        assert!(out.kernel.degraded() > 0, "budget trips must be recorded");
        assert!(out.clusters.iter().all(|c| c.len() <= 4));
        let mut all: Vec<u32> = out.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn equal_canonical_forms_share_one_cache_entry() {
        // Graph 1 is graph 0 with vertices relabeled (same ring, rotated
        // edge insertion order) — isomorphic, so one class; the chain is
        // its own class.
        let mut rotated = Graph::new();
        for _ in 0..6 {
            rotated.add_vertex(Label(0));
        }
        for i in 0..6u32 {
            rotated
                .add_edge(VertexId((i + 3) % 6), VertexId((i + 4) % 6))
                .unwrap();
        }
        let db = vec![ring(6), rotated, chain(6)];
        let cache = SimCache::build(&db);
        assert_eq!(cache.class_of(0), cache.class_of(1));
        assert_ne!(cache.class_of(0), cache.class_of(2));

        let cfg = FineConfig::default();
        let tally = Tally::new();
        let first = similarity(0, 2, &db, &cache, &cfg, &tally);
        let second = similarity(1, 2, &db, &cache, &cfg, &tally);
        assert_eq!(first.to_bits(), second.to_bits(), "hit replays the value");
        assert_eq!(
            cache.snapshot().len(),
            1,
            "isomorphic graphs share a single entry"
        );
        // Hit and miss both recorded, so the audit still counts 2 calls.
        assert_eq!(tally.counts().total(), 2);
    }

    #[test]
    fn same_class_mccs_is_not_assumed_to_be_one() {
        // Two copies of a disconnected graph (two triangles): the MCCS of
        // the pair is a single triangle, so ω = 3/6 — a cache that
        // shortcut same-class pairs to 1.0 would get this wrong.
        let mut g = Graph::new();
        for _ in 0..6 {
            g.add_vertex(Label(0));
        }
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(VertexId(a), VertexId(b)).unwrap();
        }
        let db = vec![g.clone(), g];
        let cache = SimCache::build(&db);
        assert_eq!(cache.class_of(0), cache.class_of(1));
        let cfg = FineConfig::default();
        let tally = Tally::new();
        let s = similarity(0, 1, &db, &cache, &cfg, &tally);
        assert!((s - 0.5).abs() < 1e-12, "got {s}");
        assert!(tally.counts().all_exact());
    }

    #[test]
    fn cache_seed_prefills_and_skips_foreign_classes() {
        let db = vec![ring(6), chain(6)];
        let cache = SimCache::build(&db);
        cache.seed(&[
            (0, 1, 0.25, Completeness::Exact),
            (7, 9, 0.5, Completeness::Exact), // outside this DB's class space
        ]);
        assert_eq!(cache.snapshot(), vec![(0, 1, 0.25, Completeness::Exact)]);
        // A lookup on the seeded pair is a pure hit: the (made-up) value
        // is replayed rather than recomputed.
        let cfg = FineConfig::default();
        let tally = Tally::new();
        let s = similarity(0, 1, &db, &cache, &cfg, &tally);
        assert!((s - 0.25).abs() < 1e-12);
        assert_eq!(tally.counts().total(), 1);
    }

    #[test]
    fn label_fallback_is_exact_and_bounded() {
        let a = ring(6);
        let b = chain(4);
        let s = label_vector_similarity(&a, &b);
        // 4 common unlabeled vertices over max(6, 4).
        assert!((s - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(label_vector_similarity(&Graph::new(), &Graph::new()), 0.0);
    }

    #[test]
    fn mccs_split_separates_topology_families() {
        // 6 rings and 6 chains: after one split, rings should mostly stay
        // together (high MCCS sim to a ring seed).
        let db: Vec<Graph> = (0..6)
            .map(|_| ring(6))
            .chain((0..6).map(|_| chain(6)))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let cfg = FineConfig {
            max_cluster_size: 6,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..12).collect()], &cfg, &mut rng);
        // A ring and a chain of 6 have MCCS of 5 edges (ring minus an edge is
        // a chain): similarity 5/5... wait, min(|E|) = min(6,5)=5 → 1.0.
        // Even so the partition must be valid.
        let mut all: Vec<u32> = out.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 12);
    }
}
