//! Fine clustering (Algorithm 3).
//!
//! Clusters larger than the threshold `N` are recursively split in two by
//! MCCS (or MCS) seed dissimilarity: a first seed is drawn at random, the
//! graph most dissimilar to it becomes the second seed, and every remaining
//! graph joins the seed it is more similar to. Newly produced clusters
//! still exceeding `N` go back on the work list.

use catapult_graph::mcs::{mcs, McsConfig};
use catapult_graph::Graph;
use rand::Rng;
use rayon::prelude::*;

/// Which common-subgraph similarity drives the split (Exp 1 compares both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimilarityKind {
    /// Maximum common subgraph (`ω_mcs`).
    Mcs,
    /// Maximum *connected* common subgraph (`ω_mccs`, the paper's choice).
    Mccs,
}

/// Parameters for fine clustering.
#[derive(Clone, Copy, Debug)]
pub struct FineConfig {
    /// Maximum cluster size `N`.
    pub max_cluster_size: usize,
    /// Similarity measure for seed splitting.
    pub similarity: SimilarityKind,
    /// Node budget for each MCS/MCCS computation.
    pub mcs_budget: u64,
}

impl Default for FineConfig {
    fn default() -> Self {
        FineConfig {
            max_cluster_size: 20,
            similarity: SimilarityKind::Mccs,
            mcs_budget: 100_000,
        }
    }
}

fn similarity(a: &Graph, b: &Graph, cfg: &FineConfig) -> f64 {
    let denom = a.edge_count().min(b.edge_count());
    if denom == 0 {
        return 0.0;
    }
    let mcfg = McsConfig {
        connected: cfg.similarity == SimilarityKind::Mccs,
        node_budget: cfg.mcs_budget,
    };
    mcs(a, b, mcfg).edges as f64 / denom as f64
}

/// Split one oversized cluster into two by seed dissimilarity
/// (Algorithm 3, lines 6–21).
fn split_cluster<R: Rng>(
    db: &[Graph],
    cluster: &[u32],
    cfg: &FineConfig,
    rng: &mut R,
) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(cluster.len() >= 2);
    let seed1 = cluster[rng.gen_range(0..cluster.len())];
    let rest: Vec<u32> = cluster.iter().copied().filter(|&g| g != seed1).collect();
    // ω(G, Seed1) for every remaining graph.
    let omega1: Vec<f64> = rest
        .par_iter()
        .map(|&g| similarity(&db[g as usize], &db[seed1 as usize], cfg))
        .collect();
    // Second seed: the most dissimilar graph (deterministic tie-break on id).
    // Callers split only oversized clusters (`> max_cluster_size ≥ 1`), so
    // `rest` — and with it `omega1` — is never empty here. `total_cmp`
    // keeps the selection well-defined even if a similarity turned NaN.
    #[allow(clippy::expect_used)]
    let (seed2_pos, _) = omega1
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(rest[a.0].cmp(&rest[b.0])))
        .expect("cluster has at least two members");
    let seed2 = rest[seed2_pos];

    let mut c1 = vec![seed1];
    let mut c2 = vec![seed2];
    let omega2: Vec<f64> = rest
        .par_iter()
        .map(|&g| {
            if g == seed2 {
                f64::INFINITY
            } else {
                similarity(&db[g as usize], &db[seed2 as usize], cfg)
            }
        })
        .collect();
    for (i, &g) in rest.iter().enumerate() {
        if g == seed2 {
            continue;
        }
        if omega1[i] > omega2[i] {
            c1.push(g);
        } else {
            c2.push(g);
        }
    }
    c1.sort_unstable();
    c2.sort_unstable();
    (c1, c2)
}

/// Run Algorithm 3: split every cluster larger than `N` until all clusters
/// fit (or a cluster refuses to shrink, in which case it is cut in half
/// deterministically to guarantee termination — this only happens when all
/// members are identical).
pub fn fine_cluster<R: Rng>(
    db: &[Graph],
    clusters: Vec<Vec<u32>>,
    cfg: &FineConfig,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    let n = cfg.max_cluster_size;
    let mut done: Vec<Vec<u32>> = Vec::new();
    let mut work: Vec<Vec<u32>> = Vec::new();
    for c in clusters {
        if c.len() > n {
            work.push(c);
        } else if !c.is_empty() {
            done.push(c);
        }
    }
    while let Some(cluster) = work.pop() {
        let (c1, c2) = split_cluster(db, &cluster, cfg, rng);
        for mut c in [c1, c2] {
            if c.len() == cluster.len() {
                // Degenerate split (all graphs identical): halve by index.
                let tail = c.split_off(c.len() / 2);
                for piece in [c, tail] {
                    if piece.len() > n {
                        work.push(piece);
                    } else if !piece.is_empty() {
                        done.push(piece);
                    }
                }
                break;
            }
            if c.len() > n {
                work.push(c);
            } else if !c.is_empty() {
                done.push(c);
            }
        }
    }
    done.sort_by_key(|c| c[0]);
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};
    use rand::SeedableRng;

    fn ring(n: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(0));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(0));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    #[test]
    fn splits_until_under_threshold() {
        let db: Vec<Graph> = (0..12)
            .map(|i| if i % 2 == 0 { ring(6) } else { chain(6) })
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cfg = FineConfig {
            max_cluster_size: 4,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..12).collect()], &cfg, &mut rng);
        assert!(out.iter().all(|c| c.len() <= 4));
        let mut all: Vec<u32> = out.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn small_clusters_untouched() {
        let db: Vec<Graph> = (0..4).map(|_| ring(5)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let cfg = FineConfig {
            max_cluster_size: 10,
            ..Default::default()
        };
        let input = vec![vec![0, 1], vec![2, 3]];
        let out = fine_cluster(&db, input.clone(), &cfg, &mut rng);
        assert_eq!(out, input);
    }

    #[test]
    fn identical_graphs_terminate() {
        let db: Vec<Graph> = (0..9).map(|_| ring(5)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg = FineConfig {
            max_cluster_size: 2,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..9).collect()], &cfg, &mut rng);
        assert!(out.iter().all(|c| c.len() <= 2));
        assert_eq!(out.iter().map(Vec::len).sum::<usize>(), 9);
    }

    #[test]
    fn mccs_split_separates_topology_families() {
        // 6 rings and 6 chains: after one split, rings should mostly stay
        // together (high MCCS sim to a ring seed).
        let db: Vec<Graph> = (0..6)
            .map(|_| ring(6))
            .chain((0..6).map(|_| chain(6)))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let cfg = FineConfig {
            max_cluster_size: 6,
            ..Default::default()
        };
        let out = fine_cluster(&db, vec![(0..12).collect()], &cfg, &mut rng);
        // A ring and a chain of 6 have MCCS of 5 edges (ring minus an edge is
        // a chain): similarity 5/5... wait, min(|E|) = min(6,5)=5 → 1.0.
        // Even so the partition must be valid.
        let mut all: Vec<u32> = out.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 12);
    }
}
