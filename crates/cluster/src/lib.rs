//! # catapult-cluster
//!
//! The small-graph clustering phase of CATAPULT (§4.1, §4.3):
//!
//! * [`kmeans`] — k-means with k-means++ seeding over binary subtree
//!   feature vectors;
//! * [`coarse`] — Algorithm 2 (frequent-subtree features + facility
//!   location refinement + k-means);
//! * [`fine`] — Algorithm 3 (MCCS/MCS seed splitting of oversized
//!   clusters);
//! * [`sampling`] — eager (Toivonen/Hoeffding) and lazy (Cochran
//!   stratified) sampling for large repositories;
//! * [`pipeline`] — the five Exp-1 strategies (CC, mccsFC, mcsFC, mccsH,
//!   mcsH) behind one entry point, [`pipeline::cluster_graphs`];
//! * [`quality`] — misclassification distance (Lemma 4.2 / [29]) and
//!   intra/inter-cluster similarity summaries.

// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![warn(missing_docs)]
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod ckpt_io;
pub mod coarse;
pub mod fine;
pub mod invariants;
pub mod kmeans;
pub mod pipeline;
pub mod quality;
pub mod sampling;

pub use fine::{FineOutcome, SimilarityKind};
pub use pipeline::{
    cluster_graphs, cluster_graphs_resumable, Clustering, ClusteringConfig, SamplingConfig,
    Strategy,
};
