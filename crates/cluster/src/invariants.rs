//! Cluster-assignment invariant validators.
//!
//! Clustering bugs (a graph assigned twice, an id past the database, a
//! "partition" that silently drops members) corrupt every downstream CSG
//! and pattern score without crashing anything. These validators make the
//! assignment contract explicit; [`crate::pipeline::cluster_graphs`] runs
//! them at its exit via [`catapult_graph::debug_invariants!`].

use catapult_graph::InvariantViolation;

/// Check a cluster assignment over a database of `n` graphs:
///
/// * every id is in `0..n`;
/// * no id appears twice (within or across clusters);
/// * when `require_partition`, the clusters cover all of `0..n`
///   (sampling-based pipelines cover only the sampled subset, so they
///   validate with `require_partition = false`).
pub fn validate_assignment(
    n: usize,
    clusters: &[Vec<u32>],
    require_partition: bool,
) -> Result<(), InvariantViolation> {
    let mut seen = vec![false; n];
    let mut covered = 0usize;
    for (ci, cluster) in clusters.iter().enumerate() {
        for &id in cluster {
            let Some(slot) = seen.get_mut(id as usize) else {
                return Err(InvariantViolation::new(format!(
                    "cluster {ci} contains id {id}, outside the database (|D| = {n})"
                )));
            };
            if *slot {
                return Err(InvariantViolation::new(format!(
                    "graph {id} is assigned to more than one cluster (second: {ci})"
                )));
            }
            *slot = true;
            covered += 1;
        }
    }
    if require_partition && covered != n {
        return Err(InvariantViolation::new(format!(
            "assignment covers {covered} of {n} graphs but must be a partition"
        )));
    }
    Ok(())
}

/// Check that every cluster respects the size cap `max_cluster_size`
/// (Algorithm 3's post-condition; 0 disables the check).
pub fn validate_cluster_sizes(
    clusters: &[Vec<u32>],
    max_cluster_size: usize,
) -> Result<(), InvariantViolation> {
    if max_cluster_size == 0 {
        return Ok(());
    }
    for (ci, cluster) in clusters.iter().enumerate() {
        if cluster.len() > max_cluster_size {
            return Err(InvariantViolation::new(format!(
                "cluster {ci} has {} members, above the cap of {max_cluster_size}",
                cluster.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_partition() {
        let clusters = vec![vec![0, 2], vec![1, 3, 4]];
        assert!(validate_assignment(5, &clusters, true).is_ok());
    }

    #[test]
    fn accepts_partial_cover_when_allowed() {
        let clusters = vec![vec![0], vec![3]];
        assert!(validate_assignment(5, &clusters, false).is_ok());
        assert!(validate_assignment(5, &clusters, true).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_id() {
        let clusters = vec![vec![0, 7]];
        assert!(validate_assignment(5, &clusters, false).is_err());
    }

    #[test]
    fn rejects_duplicate_assignment() {
        let within = vec![vec![0, 0], vec![1]];
        assert!(validate_assignment(5, &within, false).is_err());
        let across = vec![vec![0, 1], vec![1, 2]];
        assert!(validate_assignment(5, &across, false).is_err());
    }

    #[test]
    fn size_cap_enforced() {
        let clusters = vec![vec![0, 1, 2], vec![3]];
        assert!(validate_cluster_sizes(&clusters, 3).is_ok());
        assert!(validate_cluster_sizes(&clusters, 2).is_err());
        assert!(validate_cluster_sizes(&clusters, 0).is_ok());
    }
}
