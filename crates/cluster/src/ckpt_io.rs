//! Checkpoint payload encodings for the clustering phase, plus the
//! RNG-snapshot plumbing resumable runs need.
//!
//! Three whole-stage payloads ([`MiningCkpt`], [`CoarseCkpt`],
//! [`ClusteringCkpt`]) mark the phase's pipeline boundaries, and one
//! intra-stage payload ([`FineState`]) lets a resume land *inside* fine
//! clustering: the work/done lists, the RNG stream position, the kernel
//! tally so far, and — mid-split — the completed prefix of the pairwise
//! similarity rows. Every payload round-trips byte-identically through
//! [`catapult_ckpt::wire`]; the resume-equals-uninterrupted property
//! test leans on that directly.

use crate::pipeline::Clustering;
use catapult_ckpt::wire::{Dec, Enc, WireError};
use catapult_graph::{Completeness, TallyCounts};
use catapult_mining::subtree::FrequentSubtree;
use rand::rngs::StdRng;
use rand::RngCore;

/// An [`RngCore`] whose full stream position can be captured and
/// restored — the property that makes mid-stage resume byte-identical.
///
/// Checkpointed runs drive the pipeline with a concrete [`StdRng`]
/// (snapshot always available); the pre-existing generic entry points
/// wrap their caller's RNG in [`NoSnap`], which never snapshots and so
/// never pays for state it cannot use.
pub(crate) trait SnapRng: RngCore {
    /// The current stream position, if this RNG supports capture.
    fn snapshot(&self) -> Option<[u64; 4]>;
    /// Jump to a previously captured position.
    fn restore(&mut self, s: [u64; 4]);
}

impl SnapRng for StdRng {
    fn snapshot(&self) -> Option<[u64; 4]> {
        Some(self.state())
    }
    fn restore(&mut self, s: [u64; 4]) {
        *self = StdRng::from_state(s);
    }
}

/// Adapter giving any [`RngCore`] a (vacuous) [`SnapRng`] impl.
pub(crate) struct NoSnap<'a, R: RngCore>(pub &'a mut R);

impl<R: RngCore> RngCore for NoSnap<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl<R: RngCore> SnapRng for NoSnap<'_, R> {
    fn snapshot(&self) -> Option<[u64; 4]> {
        None
    }
    // Restore only happens when a checkpoint was loaded, and checkpoints
    // are only loaded by store-backed runs, which use `StdRng` directly.
    fn restore(&mut self, _s: [u64; 4]) {}
}

/// Progress through one in-flight cluster split (Algorithm 3's inner
/// loop), checkpointed every `chunk_pairs` similarity computations.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SplitProgress {
    /// The cluster being split.
    pub cluster: Vec<u32>,
    /// First seed (already drawn — the RNG state in the enclosing
    /// [`FineState`] is *post*-draw).
    pub seed1: u32,
    /// Completed prefix of ω(G, seed1), aligned with the cluster minus
    /// `seed1` in order.
    pub omega1: Vec<f64>,
    /// Completed prefix of ω(G, seed2); only grows once `omega1` is
    /// complete (seed2 is derived from the full `omega1`).
    pub omega2: Vec<f64>,
}

/// The fine-clustering stage's resumable state.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct FineState {
    /// Clusters already at or under the size cap.
    pub done: Vec<Vec<u32>>,
    /// Oversized clusters still to split.
    pub work: Vec<Vec<u32>>,
    /// RNG stream position to resume from.
    pub rng: [u64; 4],
    /// Kernel completeness counts accumulated so far.
    pub tally: TallyCounts,
    /// The split in flight, if the checkpoint landed mid-split.
    pub current: Option<SplitProgress>,
    /// Memoized pairwise-similarity entries, keyed by unordered
    /// isomorphism-class pair (`a <= b`), sorted by key so the encoding
    /// is byte-identical regardless of which worker filled which entry.
    pub cache: Vec<CacheEntry>,
}

/// One persisted similarity-cache entry: unordered class pair, the
/// similarity value, and the completeness tag the kernel reported when
/// the value was first computed (replayed into the tally on every hit).
pub(crate) type CacheEntry = (u32, u32, f64, Completeness);

fn completeness_code(c: Completeness) -> u32 {
    match c {
        Completeness::Exact => 0,
        Completeness::BudgetExhausted => 1,
        Completeness::DeadlineExceeded => 2,
        Completeness::Cancelled => 3,
        Completeness::Degraded => 4,
    }
}

fn completeness_from_code(v: u32) -> Result<Completeness, WireError> {
    Ok(match v {
        0 => Completeness::Exact,
        1 => Completeness::BudgetExhausted,
        2 => Completeness::DeadlineExceeded,
        3 => Completeness::Cancelled,
        4 => Completeness::Degraded,
        _ => return Err(WireError::Malformed("unknown completeness tag")),
    })
}

pub(crate) fn encode_fine_state(s: &FineState) -> Vec<u8> {
    let mut e = Enc::new();
    e.clusters(&s.done);
    e.clusters(&s.work);
    e.u64s(&s.rng);
    e.tally(&s.tally);
    match &s.current {
        None => e.bool(false),
        Some(p) => {
            e.bool(true);
            e.u32s(&p.cluster);
            e.u32(p.seed1);
            e.f64s(&p.omega1);
            e.f64s(&p.omega2);
        }
    }
    e.usize(s.cache.len());
    for &(a, b, value, tag) in &s.cache {
        e.u32(a);
        e.u32(b);
        e.f64(value);
        e.u32(completeness_code(tag));
    }
    e.into_bytes()
}

pub(crate) fn decode_fine_state(bytes: &[u8]) -> Result<FineState, WireError> {
    let mut d = Dec::new(bytes);
    let done = d.clusters()?;
    let work = d.clusters()?;
    let rng = fixed4(d.u64s()?)?;
    let tally = d.tally()?;
    let current = if d.bool()? {
        Some(SplitProgress {
            cluster: d.u32s()?,
            seed1: d.u32()?,
            omega1: d.f64s()?,
            omega2: d.f64s()?,
        })
    } else {
        None
    };
    let cache_len = d.usize()?;
    let mut cache = Vec::with_capacity(cache_len.min(bytes.len()));
    for _ in 0..cache_len {
        let a = d.u32()?;
        let b = d.u32()?;
        let value = d.f64()?;
        let tag = completeness_from_code(d.u32()?)?;
        cache.push((a, b, value, tag));
    }
    d.finish()?;
    Ok(FineState {
        done,
        work,
        rng,
        tally,
        current,
        cache,
    })
}

/// Payload of the `mining` stage checkpoint: the mined coarse features,
/// the stage's kernel audit, and the RNG position after the stage.
#[derive(Clone, Debug)]
pub(crate) struct MiningCkpt {
    pub features: Vec<FrequentSubtree>,
    pub mining: TallyCounts,
    pub rng: [u64; 4],
}

pub(crate) fn encode_mining(c: &MiningCkpt) -> Vec<u8> {
    let mut e = Enc::new();
    encode_features(&mut e, &c.features);
    e.tally(&c.mining);
    e.u64s(&c.rng);
    e.into_bytes()
}

pub(crate) fn decode_mining(bytes: &[u8]) -> Result<MiningCkpt, WireError> {
    let mut d = Dec::new(bytes);
    let features = decode_features(&mut d)?;
    let mining = d.tally()?;
    let rng = fixed4(d.u64s()?)?;
    d.finish()?;
    Ok(MiningCkpt {
        features,
        mining,
        rng,
    })
}

/// Payload of the `coarse` stage checkpoint: clusters after coarse
/// k-means *and* lazy sampling, plus everything the `mining` payload
/// carries (the later stage subsumes the earlier one).
#[derive(Clone, Debug)]
pub(crate) struct CoarseCkpt {
    pub clusters: Vec<Vec<u32>>,
    pub features: Vec<FrequentSubtree>,
    pub mining: TallyCounts,
    pub rng: [u64; 4],
}

pub(crate) fn encode_coarse(c: &CoarseCkpt) -> Vec<u8> {
    let mut e = Enc::new();
    e.clusters(&c.clusters);
    encode_features(&mut e, &c.features);
    e.tally(&c.mining);
    e.u64s(&c.rng);
    e.into_bytes()
}

pub(crate) fn decode_coarse(bytes: &[u8]) -> Result<CoarseCkpt, WireError> {
    let mut d = Dec::new(bytes);
    let clusters = d.clusters()?;
    let features = decode_features(&mut d)?;
    let mining = d.tally()?;
    let rng = fixed4(d.u64s()?)?;
    d.finish()?;
    Ok(CoarseCkpt {
        clusters,
        features,
        mining,
        rng,
    })
}

/// Payload of the `clustering` stage checkpoint: the phase's complete
/// output plus the RNG position the next stage starts from.
#[derive(Clone, Debug)]
pub(crate) struct ClusteringCkpt {
    pub clustering: Clustering,
    pub rng: [u64; 4],
}

pub(crate) fn encode_clustering(c: &ClusteringCkpt) -> Vec<u8> {
    let mut e = Enc::new();
    e.clusters(&c.clustering.clusters);
    encode_features(&mut e, &c.clustering.features);
    e.duration(c.clustering.elapsed);
    e.tally(&c.clustering.mining);
    e.tally(&c.clustering.fine);
    e.u64s(&c.rng);
    e.into_bytes()
}

pub(crate) fn decode_clustering(bytes: &[u8]) -> Result<ClusteringCkpt, WireError> {
    let mut d = Dec::new(bytes);
    let clusters = d.clusters()?;
    let features = decode_features(&mut d)?;
    let elapsed = d.duration()?;
    let mining = d.tally()?;
    let fine = d.tally()?;
    let rng = fixed4(d.u64s()?)?;
    d.finish()?;
    Ok(ClusteringCkpt {
        clustering: Clustering {
            clusters,
            features,
            elapsed,
            mining,
            fine,
        },
        rng,
    })
}

fn encode_features(e: &mut Enc, features: &[FrequentSubtree]) {
    e.usize(features.len());
    for t in features {
        e.graph(&t.tree);
        e.u32s(&t.canonical);
        e.u32s(&t.transactions);
    }
}

fn decode_features(d: &mut Dec<'_>) -> Result<Vec<FrequentSubtree>, WireError> {
    let n = d.usize()?;
    if n > d.remaining() {
        return Err(WireError::Malformed("sequence length exceeds payload"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(FrequentSubtree {
            tree: d.graph()?,
            canonical: d.u32s()?,
            transactions: d.u32s()?,
        });
    }
    Ok(out)
}

fn fixed4(v: Vec<u64>) -> Result<[u64; 4], WireError> {
    <[u64; 4]>::try_from(v).map_err(|_| WireError::Malformed("rng state must be 4 words"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Completeness, Graph, Label, Tally, VertexId};

    fn tree() -> FrequentSubtree {
        let mut g = Graph::new();
        g.add_vertex(Label(3));
        g.add_vertex(Label(5));
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        FrequentSubtree {
            canonical: catapult_graph::canonical::canonical_tokens(&g),
            tree: g,
            transactions: vec![0, 4, 9],
        }
    }

    fn tally() -> TallyCounts {
        let t = Tally::new();
        t.record(Completeness::Exact);
        t.record(Completeness::Exact);
        t.record(Completeness::BudgetExhausted);
        t.record(Completeness::Degraded);
        t.counts()
    }

    #[test]
    fn fine_state_roundtrips_byte_identically() {
        for current in [
            None,
            Some(SplitProgress {
                cluster: vec![3, 1, 4, 1, 5],
                seed1: 4,
                omega1: vec![0.25, -0.0, f64::INFINITY],
                omega2: vec![],
            }),
        ] {
            let s = FineState {
                done: vec![vec![1, 2], vec![7]],
                work: vec![vec![3, 4, 5, 6]],
                rng: [1, u64::MAX, 0, 42],
                tally: tally(),
                current,
                cache: vec![
                    (0, 2, 0.5, Completeness::Exact),
                    (1, 1, 1.0, Completeness::Exact),
                    (1, 3, 0.125, Completeness::BudgetExhausted),
                ],
            };
            let bytes = encode_fine_state(&s);
            let back = decode_fine_state(&bytes).unwrap();
            assert_eq!(back, s);
            assert_eq!(encode_fine_state(&back), bytes, "re-encode byte-identical");
        }
    }

    #[test]
    fn stage_payloads_roundtrip() {
        let m = MiningCkpt {
            features: vec![tree(), tree()],
            mining: tally(),
            rng: [9, 8, 7, 6],
        };
        let bytes = encode_mining(&m);
        let back = decode_mining(&bytes).unwrap();
        assert_eq!(encode_mining(&back), bytes);
        assert_eq!(back.features.len(), 2);
        assert_eq!(back.features[0].transactions, vec![0, 4, 9]);

        let c = CoarseCkpt {
            clusters: vec![vec![0, 1], vec![2]],
            features: vec![tree()],
            mining: tally(),
            rng: [1, 2, 3, 4],
        };
        let bytes = encode_coarse(&c);
        assert_eq!(encode_coarse(&decode_coarse(&bytes).unwrap()), bytes);

        let cl = ClusteringCkpt {
            clustering: Clustering {
                clusters: vec![vec![0, 2], vec![1]],
                features: vec![tree()],
                elapsed: std::time::Duration::from_micros(1234),
                mining: tally(),
                fine: TallyCounts::default(),
            },
            rng: [11, 12, 13, 14],
        };
        let bytes = encode_clustering(&cl);
        assert_eq!(
            encode_clustering(&decode_clustering(&bytes).unwrap()),
            bytes
        );
    }

    #[test]
    fn truncated_payloads_fail_loudly() {
        let s = FineState {
            done: vec![vec![1]],
            work: vec![],
            rng: [0; 4],
            tally: TallyCounts::default(),
            current: None,
            cache: vec![(0, 1, 0.75, Completeness::Degraded)],
        };
        let bytes = encode_fine_state(&s);
        assert!(decode_fine_state(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes;
        extended.push(0);
        assert!(decode_fine_state(&extended).is_err());
    }

    #[test]
    fn unknown_cache_completeness_tag_is_rejected() {
        let s = FineState {
            done: vec![],
            work: vec![],
            rng: [0; 4],
            tally: TallyCounts::default(),
            current: None,
            cache: vec![(2, 3, 0.5, Completeness::Exact)],
        };
        let mut bytes = encode_fine_state(&s);
        // The completeness code is the trailing little-endian u32.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            decode_fine_state(&bytes),
            Err(WireError::Malformed(_))
        ));
    }
}
