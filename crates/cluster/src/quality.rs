//! Clustering quality metrics.
//!
//! Lemma 4.2 analyzes small-graph clustering through the
//! *misclassification error distance* to an optimum clustering [29]; this
//! module implements that distance (via an optimal cluster matching,
//! solved with the Hungarian algorithm) plus intra-/inter-cluster MCCS
//! similarity summaries used by the ablations to characterize partitions.

use catapult_graph::matching::hungarian;
use catapult_graph::mcs::mccs_similarity_tagged;
use catapult_graph::{Graph, SearchBudget, Tally};

/// Misclassification error distance between two clusterings of the same
/// `n` items: `|D'| / n` where `|D'|` is the minimum number of items
/// falling outside an optimal 1-1 matching of clusters [29].
///
/// 0 means identical partitions (up to cluster renaming); approaches 1 as
/// the partitions decorrelate.
pub fn misclassification_distance(a: &[Vec<u32>], b: &[Vec<u32>], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let k = a.len().max(b.len());
    if k == 0 {
        return 1.0;
    }
    // Overlap matrix, padded square; Hungarian minimizes, so negate.
    let overlap = |x: &[u32], y: &[u32]| -> usize {
        let sy: std::collections::HashSet<u32> = y.iter().copied().collect();
        x.iter().filter(|v| sy.contains(v)).count()
    };
    let mut cost = vec![vec![0.0f64; k]; k];
    for (i, row) in cost.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let o = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => overlap(x, y),
                _ => 0,
            };
            *cell = -(o as f64);
        }
    }
    let (neg_matched, _) = hungarian(&cost);
    let matched = -neg_matched;
    ((n as f64 - matched) / n as f64).clamp(0.0, 1.0)
}

/// Mean pairwise MCCS similarity within clusters vs across clusters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeparationReport {
    /// Mean ω_mccs over same-cluster pairs.
    pub intra: f64,
    /// Mean ω_mccs over cross-cluster pairs (sampled).
    pub inter: f64,
    /// Same-cluster pairs measured.
    pub intra_pairs: usize,
    /// Cross-cluster pairs measured.
    pub inter_pairs: usize,
    /// Pairs whose MCCS search tripped its budget — their similarity is a
    /// lower bound, so treat `intra`/`inter` as approximate when nonzero.
    pub degraded_pairs: usize,
}

/// Measure cluster separation: all intra-cluster pairs, and up to
/// `inter_cap` cross-cluster pairs (strided deterministically). Accepts
/// any budget convertible to [`SearchBudget`] (a bare `u64` node cap
/// included) and reports how many pair similarities were degraded.
pub fn separation(
    db: &[Graph],
    clusters: &[Vec<u32>],
    budget: impl Into<SearchBudget>,
    inter_cap: usize,
) -> SeparationReport {
    let budget = budget.into();
    let tally = Tally::new();
    let sim = |x: u32, y: u32| {
        let (s, c) = mccs_similarity_tagged(&db[x as usize], &db[y as usize], &budget);
        tally.record(c);
        s
    };
    let mut intra = Vec::new();
    for c in clusters {
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                intra.push(sim(c[i], c[j]));
            }
        }
    }
    // Cross-cluster pairs: first members of distinct clusters, strided.
    let mut inter = Vec::new();
    'outer: for (ci, c) in clusters.iter().enumerate() {
        for d in clusters.iter().skip(ci + 1) {
            for (&x, &y) in c.iter().zip(d.iter()) {
                if inter.len() >= inter_cap {
                    break 'outer;
                }
                inter.push(sim(x, y));
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    SeparationReport {
        intra: mean(&intra),
        inter: mean(&inter),
        intra_pairs: intra.len(),
        inter_pairs: inter.len(),
        degraded_pairs: tally.counts().degraded() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_graph::{Label, VertexId};

    fn ring(n: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(0));
        }
        for i in 0..n {
            g.add_edge(VertexId(i), VertexId((i + 1) % n)).unwrap();
        }
        g
    }

    fn chain(n: u32, label: u32) -> Graph {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_vertex(Label(label));
        }
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    #[test]
    fn identical_partitions_have_zero_distance() {
        let a = vec![vec![0, 1, 2], vec![3, 4]];
        assert_eq!(misclassification_distance(&a, &a, 5), 0.0);
        // Renamed clusters too.
        let b = vec![vec![3, 4], vec![0, 1, 2]];
        assert_eq!(misclassification_distance(&a, &b, 5), 0.0);
    }

    #[test]
    fn single_misplacement_costs_one_over_n() {
        let a = vec![vec![0, 1, 2], vec![3, 4]];
        let b = vec![vec![0, 1], vec![2, 3, 4]];
        assert!((misclassification_distance(&a, &b, 5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn different_cluster_counts_are_handled() {
        let a = vec![vec![0, 1, 2, 3]];
        let b = vec![vec![0, 1], vec![2, 3]];
        // Best match keeps 2 of 4 together.
        assert!((misclassification_distance(&a, &b, 4) - 0.5).abs() < 1e-12);
        assert_eq!(misclassification_distance(&[], &[], 0), 0.0);
    }

    #[test]
    fn separation_detects_structure() {
        // Two families: rings of different labels vs chains.
        let db: Vec<Graph> = vec![
            ring(6),
            ring(6),
            ring(6),
            chain(6, 1),
            chain(6, 1),
            chain(6, 1),
        ];
        let clusters = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let r = separation(&db, &clusters, 50_000u64, 10);
        assert!(r.intra > r.inter, "intra {} vs inter {}", r.intra, r.inter);
        assert_eq!(r.intra_pairs, 6);
        assert!(r.inter_pairs > 0);
        assert_eq!(r.degraded_pairs, 0, "generous budget must stay exact");
    }

    #[test]
    fn separation_reports_degraded_pairs() {
        let db: Vec<Graph> = vec![ring(6), ring(6), chain(6, 1), chain(6, 1)];
        let clusters = vec![vec![0, 1], vec![2, 3]];
        let r = separation(&db, &clusters, SearchBudget::nodes(1), 10);
        assert!(r.degraded_pairs > 0, "1-node budget must trip");
    }
}
