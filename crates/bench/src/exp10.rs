//! Exp 10 — Cognitive-load measures (Fig. 18, Appendix C).
//!
//! Correlates (Kendall τ) a simulated human ranking of patterns by
//! decision time with the rankings induced by F1 = |E|·ρ, F2 = 2|E|, and
//! F3 = 2|E|/|V|, on two stimulus sets (the paper uses AIDS and PubChem
//! pattern/query pairs; 15 participants each). Paper result: F1 ≈ 0.8 ≳
//! F3 ≈ 0.78 ≫ F2 ≈ 0.28.

use crate::report::{f2, Report, Table};
use crate::scale::Scale;
use catapult_eval::cogload::{correlate_repeated, exp10_stimuli, CogLoadCorrelation};
use catapult_graph::{Graph, Label, VertexId};

/// A second stimulus set (PubChem-flavoured shapes: fused rings, a long
/// chain, dense blobs) with the same |V|/|E| envelope as Exp 10.
pub fn second_stimuli() -> Vec<Graph> {
    let l = Label(0);
    let path = |n: usize| {
        let labels = vec![l; n];
        let e: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_parts(&labels, &e)
    };
    // Fused hexagon pair sharing an edge (naphthalene skeleton, 11 edges).
    let naphthalene = Graph::from_parts(
        &[l; 10],
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (4, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 5),
        ],
    );
    let clique4_plus_tail = {
        let mut g = Graph::new();
        for _ in 0..5 {
            g.add_vertex(l);
        }
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                g.add_edge(VertexId(i), VertexId(j)).unwrap();
            }
        }
        g.add_edge(VertexId(3), VertexId(4)).unwrap();
        g
    };
    let k5_minus_edge = {
        let mut g = Graph::new();
        for _ in 0..5 {
            g.add_vertex(l);
        }
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                if !(i == 0 && j == 1) {
                    g.add_edge(VertexId(i), VertexId(j)).unwrap();
                }
            }
        }
        g
    };
    let wheel4 = {
        // 4-cycle plus hub: small but dense with spoke crossings.
        let mut g = Graph::new();
        for _ in 0..5 {
            g.add_vertex(l);
        }
        for i in 0..4u32 {
            g.add_edge(VertexId(i), VertexId((i + 1) % 4)).unwrap();
            g.add_edge(VertexId(i), VertexId(4)).unwrap();
        }
        g
    };
    let star8 = {
        let labels = vec![l; 9];
        let e: Vec<(u32, u32)> = (1..9u32).map(|i| (0, i)).collect();
        Graph::from_parts(&labels, &e)
    };
    // Same design as the first set: large sparse stimuli read fast, small
    // dense ones slow — the contrast that separates F1/F3 from F2.
    vec![
        path(10),
        star8,
        naphthalene,
        clique4_plus_tail,
        k5_minus_edge,
        wheel4,
    ]
}

/// One dataset's correlations.
#[derive(Clone, Debug)]
pub struct CorrelationRow {
    /// Stimulus set name.
    pub dataset: &'static str,
    /// τ values for F1/F2/F3.
    pub tau: CogLoadCorrelation,
}

/// Run Exp 10.
pub fn run(scale: Scale) -> Report {
    let repetitions = match scale {
        Scale::Smoke => 5,
        Scale::Quick => 20,
        Scale::Full => 60,
    };
    let rows = vec![
        CorrelationRow {
            dataset: "aids-stimuli",
            tau: correlate_repeated(&exp10_stimuli(), 15, repetitions, 1001),
        },
        CorrelationRow {
            dataset: "pubchem-stimuli",
            tau: correlate_repeated(&second_stimuli(), 15, repetitions, 1002),
        },
    ];
    into_report(rows)
}

fn into_report(rows: Vec<CorrelationRow>) -> Report {
    let mut table = Table::new(&["dataset", "tau(F1)", "tau(F2)", "tau(F3)"]);
    for r in &rows {
        table.row(vec![
            r.dataset.to_string(),
            f2(r.tau.f1),
            f2(r.tau.f2),
            f2(r.tau.f3),
        ]);
    }
    let avg = |f: fn(&CogLoadCorrelation) -> f64| {
        rows.iter().map(|r| f(&r.tau)).sum::<f64>() / rows.len().max(1) as f64
    };
    let notes = vec![format!(
        "avg tau: F1 {:.2}, F2 {:.2}, F3 {:.2} (paper: 0.8, 0.28, 0.78 — F1/F3 effective, F2 not)",
        avg(|c| c.f1),
        avg(|c| c.f2),
        avg(|c| c.f3)
    )];
    Report {
        id: "exp10",
        title: "Cognitive-load measures (Fig. 18)".into(),
        tables: vec![("kendall-tau".into(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_stimulus_sets_reported() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 2);
    }

    #[test]
    fn second_stimuli_envelope() {
        for g in second_stimuli() {
            assert!((3..=13).contains(&g.edge_count()));
            assert!((4..=13).contains(&g.vertex_count()));
        }
    }

    #[test]
    fn f1_dominates_f2_at_quick_scale() {
        let r = run(Scale::Quick);
        // Parse back from the notes is brittle; recompute instead.
        let a = correlate_repeated(&exp10_stimuli(), 15, 20, 1001);
        let b = correlate_repeated(&second_stimuli(), 15, 20, 1002);
        let f1 = (a.f1 + b.f1) / 2.0;
        let f2v = (a.f2 + b.f2) / 2.0;
        assert!(f1 > f2v, "F1 {f1:.2} must beat F2 {f2v:.2}");
        let _ = r;
    }
}
