//! Kernel microbenchmark: `cargo run --release -p catapult-bench --bin
//! bench_kernels [-- <out.json> [scale] [reps]]`.
//!
//! Times the search kernels behind fine clustering — MCS / MCCS (pruned
//! vs reference unpruned), isomorphism checks and canonical-form hashing
//! — over a fixed molecule-pair workload, and writes per-kernel medians
//! plus probe counts to `BENCH_kernels.json` (or the given path). See
//! [`catapult_bench::kernels`] for what the pruned/unpruned split means.
//!
//! The output JSON is schema-versioned; an existing file written at a
//! different `schema_version` is never silently overwritten — pass
//! `--force` to replace it. `--metrics-out FILE` additionally writes the
//! same machine-readable run manifest the `catapult` CLI emits.

use catapult_bench::kernels;
use catapult_obs::{manifest, Recorder, RunManifest};
use std::path::Path;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut force = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--force" => force = true,
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => {
                    eprintln!("--metrics-out needs a value");
                    std::process::exit(2);
                }
            },
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let out = positional
        .next()
        .unwrap_or_else(|| "BENCH_kernels.json".into());
    let scale: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let reps: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    for path in std::iter::once(&out).chain(metrics_out.as_ref()) {
        if let Err(e) = manifest::guard_overwrite(Path::new(path), force) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }

    let recorder = if metrics_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let benches = kernels::run_recorded(scale, reps, &recorder);
    for b in &benches {
        println!(
            "{:<10} {:<9} median {:>10.6}s  probes {:>12}  ({:>12.0} probes/s, {} pairs)",
            b.kernel,
            b.variant,
            b.median.as_secs_f64(),
            b.probes,
            b.probes_per_sec(),
            b.pairs,
        );
    }
    let json = kernels::to_json(&benches);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    if let Some(path) = metrics_out {
        let mut m = RunManifest::new("bench_kernels");
        m.set(
            "environment",
            manifest::environment(rayon::current_threads()),
        );
        let mut results = catapult_obs::json::Value::array();
        for b in &benches {
            let mut e = catapult_obs::json::Value::object();
            e.set("kernel", b.kernel);
            e.set("variant", b.variant);
            e.set("secs_median", b.median.as_secs_f64());
            e.set("reps", b.reps as u64);
            e.set("probes", b.probes);
            e.set("probes_per_sec", b.probes_per_sec());
            e.set("pairs", b.pairs as u64);
            results.push(e);
        }
        m.set("results", results);
        if let Some(snapshot) = recorder.snapshot() {
            m.attach_snapshot(&snapshot);
        }
        if let Err(e) = m.write(Path::new(&path), force) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote metrics to {path}");
    }
}
