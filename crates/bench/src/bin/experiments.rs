//! Experiment harness CLI.
//!
//! ```text
//! cargo run --release -p catapult-bench --bin experiments -- all
//! cargo run --release -p catapult-bench --bin experiments -- exp3 exp9 --scale quick
//! ```
//!
//! `--metrics-out FILE` writes the same schema-versioned run manifest the
//! `catapult` CLI emits: one span per experiment plus per-experiment wall
//! clock in a `results` section (`--force` overwrites a file written at a
//! different schema version).

use catapult_bench::{run_experiment, Scale, ALL_ABLATIONS, ALL_EXPERIMENTS};
use catapult_obs::{manifest, Recorder, RunManifest, Stopwatch};
use std::path::Path;

/// Experiment ids as `&'static str` span names (spans borrow their name).
fn span_name(id: &str) -> &'static str {
    ALL_EXPERIMENTS
        .iter()
        .chain(ALL_ABLATIONS.iter())
        .find(|s| **s == id)
        .copied()
        .unwrap_or("experiment")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut ids: Vec<String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut force = false;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                match Scale::parse(v) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{v}' (smoke|quick|full)");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(path.clone()),
                None => {
                    eprintln!("--metrics-out needs a value");
                    std::process::exit(2);
                }
            },
            "--force" => force = true,
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(ALL_ABLATIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [all | ablations | exp1..exp10 | ablation1..ablation5]... [--scale smoke|quick|full] [--metrics-out FILE] [--force]"
        );
        std::process::exit(2);
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = manifest::guard_overwrite(Path::new(path), force) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    let recorder = if metrics_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let mut results = catapult_obs::json::Value::array();
    for id in ids {
        let start = Stopwatch::start();
        let _span = recorder.span(span_name(&id));
        match run_experiment(&id, scale) {
            Some(report) => {
                println!("{report}");
                let secs = start.elapsed().as_secs_f64();
                println!("[{id} completed in {secs:.1}s]\n");
                let mut e = catapult_obs::json::Value::object();
                e.set("id", id.as_str());
                e.set("secs", secs);
                results.push(e);
            }
            None => {
                eprintln!("unknown experiment '{id}'");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = metrics_out {
        let mut m = RunManifest::new("experiments");
        m.set(
            "environment",
            manifest::environment(rayon::current_threads()),
        );
        m.set("scale", scale.name());
        m.set("results", results);
        if let Some(snapshot) = recorder.snapshot() {
            m.attach_snapshot(&snapshot);
        }
        if let Err(e) = m.write(Path::new(&path), force) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote metrics to {path}");
    }
}
