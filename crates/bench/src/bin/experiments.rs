//! Experiment harness CLI.
//!
//! ```text
//! cargo run --release -p catapult-bench --bin experiments -- all
//! cargo run --release -p catapult-bench --bin experiments -- exp3 exp9 --scale quick
//! ```

use catapult_bench::{run_experiment, Scale, ALL_ABLATIONS, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                match Scale::parse(v) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{v}' (smoke|quick|full)");
                        std::process::exit(2);
                    }
                }
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(ALL_ABLATIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [all | ablations | exp1..exp10 | ablation1..ablation5]... [--scale smoke|quick|full]"
        );
        std::process::exit(2);
    }
    for id in ids {
        let start = std::time::Instant::now();
        match run_experiment(&id, scale) {
            Some(report) => {
                println!("{report}");
                println!(
                    "[{} completed in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("unknown experiment '{id}'");
                std::process::exit(2);
            }
        }
    }
}
