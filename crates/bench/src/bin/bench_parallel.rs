//! Thread-scaling benchmark: `cargo run --release -p catapult-bench --bin
//! bench_parallel [-- <out.json> [scale] [reps]]`.
//!
//! Times the mining and fine-clustering fan-outs with the worker pool
//! pinned to 1 vs auto-sized, and writes the comparison to
//! `BENCH_parallel.json` (or the given path). See
//! [`catapult_bench::parallel`] for what the numbers mean on a
//! single-core host.
//!
//! The output JSON is schema-versioned; an existing file written at a
//! different `schema_version` is never silently overwritten — pass
//! `--force` to replace it. `--metrics-out FILE` additionally writes the
//! same machine-readable run manifest the `catapult` CLI emits (span
//! tree, environment, bench results).

use catapult_bench::parallel;
use catapult_obs::{manifest, Recorder, RunManifest};
use std::path::Path;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut force = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--force" => force = true,
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => {
                    eprintln!("--metrics-out needs a value");
                    std::process::exit(2);
                }
            },
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let out = positional
        .next()
        .unwrap_or_else(|| "BENCH_parallel.json".into());
    let scale: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let reps: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    // Refuse to clobber results written at a different schema version
    // (e.g. a checked-in baseline from an older layout) unless forced.
    for path in std::iter::once(&out).chain(metrics_out.as_ref()) {
        if let Err(e) = manifest::guard_overwrite(Path::new(path), force) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }

    let recorder = if metrics_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let benches = parallel::run_recorded(scale, reps, &recorder);
    for b in &benches {
        println!(
            "{:<16} seq {:>8.3}s  auto({} threads) {:>8.3}s  speedup {:.2}x",
            b.workload,
            b.sequential.as_secs_f64(),
            b.auto_threads,
            b.auto.as_secs_f64(),
            b.speedup(),
        );
    }
    let json = parallel::to_json(&benches);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    // The checked-in baseline was produced on a 1-core host, where the
    // pool degenerates to sequential execution and every speedup is ~1x.
    // Make sure nobody quotes (or diffs) those numbers against a
    // multi-core run without noticing.
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host == 1 {
        catapult_obs::warn(format!(
            "{out} was measured on a single-core host: speedups are ~1x by \
             construction and the wall-clock numbers are NOT comparable to \
             other hosts (cargo xtask bench-diff refuses such comparisons \
             without --allow-cross-host)"
        ));
    } else {
        catapult_obs::warn(format!(
            "wall-clock numbers in {out} are specific to this host \
             ({host} threads); compare across hosts only via \
             `cargo xtask bench-diff --allow-cross-host`"
        ));
    }

    if let Some(path) = metrics_out {
        let mut m = RunManifest::new("bench_parallel");
        m.set(
            "environment",
            manifest::environment(rayon::current_threads()),
        );
        let mut results = catapult_obs::json::Value::array();
        for b in &benches {
            let mut e = catapult_obs::json::Value::object();
            e.set("workload", b.workload);
            e.set("secs_sequential", b.sequential.as_secs_f64());
            e.set("secs_auto", b.auto.as_secs_f64());
            e.set("auto_threads", b.auto_threads as u64);
            e.set("speedup", b.speedup());
            results.push(e);
        }
        m.set("results", results);
        if let Some(snapshot) = recorder.snapshot() {
            m.attach_snapshot(&snapshot);
        }
        if let Err(e) = m.write(Path::new(&path), force) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote metrics to {path}");
    }
}
