//! Thread-scaling benchmark: `cargo run --release -p catapult-bench --bin
//! bench_parallel [-- <out.json> [scale] [reps]]`.
//!
//! Times the mining and fine-clustering fan-outs with the worker pool
//! pinned to 1 vs auto-sized, and writes the comparison to
//! `BENCH_parallel.json` (or the given path). See
//! [`catapult_bench::parallel`] for what the numbers mean on a
//! single-core host.

use catapult_bench::parallel;

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_parallel.json".into());
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let benches = parallel::run(scale, reps);
    for b in &benches {
        println!(
            "{:<16} seq {:>8.3}s  auto({} threads) {:>8.3}s  speedup {:.2}x",
            b.workload,
            b.sequential.as_secs_f64(),
            b.auto_threads,
            b.auto.as_secs_f64(),
            b.speedup(),
        );
    }
    let json = parallel::to_json(&benches);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
