//! # catapult-bench
//!
//! The experiment harness reproducing every table and figure in the
//! paper's evaluation (§6 + Appendix C). Each `expNN` module regenerates
//! one artifact and returns a [`report::Report`] with the same rows/series
//! the paper plots; the `experiments` binary prints them.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`exp01`] | Fig. 7 — clustering strategies |
//! | [`exp02`] | Fig. 8 + 9 — sampling vs no sampling |
//! | [`exp03`] | §6.2 Exp 3 — commercial GUI comparison |
//! | [`exp04`] | Table 1 + Fig. 10 — (simulated) user study |
//! | [`exp05`] | Fig. 11 — coverage vs |P| |
//! | [`exp06`] | Fig. 12 — scalability |
//! | [`exp07`] | Fig. 13 — effect of |P| |
//! | [`exp08`] | Fig. 14 + 15 + 16 — pattern size bounds |
//! | [`exp09`] | Fig. 17 — frequent-subgraph baseline |
//! | [`exp10`] | Fig. 18 — cognitive-load measures |

// Lint policy: see [workspace.lints] in the root Cargo.toml.
#![warn(missing_docs)]
// The experiment harness builds fixed, known-valid configurations and
// synthetic stimuli; failing fast on a bad constant is the desired
// behavior, so panicking shortcuts are accepted crate-wide here. The
// no-panic policy targets the library crates (graph/mining/cluster/csg/
// core), which this crate only drives.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::panic))]

pub mod ablation;
pub mod common;
pub mod exp01;
pub mod exp02;
pub mod exp03;
pub mod exp04;
pub mod exp05;
pub mod exp06;
pub mod exp07;
pub mod exp08;
pub mod exp09;
pub mod exp10;
pub mod kernels;
pub mod parallel;
pub mod report;
pub mod scale;

pub use report::Report;
pub use scale::Scale;

/// Host-fingerprint lines shared by both bench manifests. `cargo xtask
/// bench-diff` refuses to compare wall-clock numbers when these differ
/// (unless `--allow-cross-host`): `secs_*` fields are only meaningful on
/// the host that produced them, while `probes`/`pairs` are deterministic
/// and comparable anywhere.
pub fn host_fingerprint_json() -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_env = match std::env::var("CATAPULT_THREADS") {
        Ok(v) => format!("\"{}\"", v.escape_default()),
        Err(_) => "null".to_string(),
    };
    format!(
        "  \"host_threads\": {host},\n  \"catapult_threads\": {threads_env},\n  \"os\": \"{}\",\n  \"arch\": \"{}\",\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// Run one experiment by id ("exp1".."exp10").
pub fn run_experiment(id: &str, scale: Scale) -> Option<Report> {
    Some(match id {
        "exp1" => exp01::run(scale),
        "exp2" => exp02::run(scale),
        "exp3" => exp03::run(scale),
        "exp4" => exp04::run(scale),
        "exp5" => exp05::run(scale),
        "exp6" => exp06::run(scale),
        "exp7" => exp07::run(scale),
        "exp8" => exp08::run(scale),
        "exp9" => exp09::run(scale),
        "exp10" => exp10::run(scale),
        "ablation1" => ablation::run_score_ablation(scale),
        "ablation2" => ablation::run_clustering_ablation(scale),
        "ablation3" => ablation::run_walks_ablation(scale),
        "ablation4" => ablation::run_querylog_ablation(scale),
        "ablation5" => ablation::run_seed_stability(scale),
        _ => return None,
    })
}

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: [&str; 10] = [
    "exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7", "exp8", "exp9", "exp10",
];

/// Ablation study ids (extensions beyond the paper's figures).
pub const ALL_ABLATIONS: [&str; 5] = [
    "ablation1",
    "ablation2",
    "ablation3",
    "ablation4",
    "ablation5",
];
