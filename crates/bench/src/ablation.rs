//! Ablation studies beyond the paper's figures — the design choices
//! DESIGN.md calls out, each isolated and measured:
//!
//! * **ablation1** — Eq. 2 score terms: full multiplicative score vs
//!   dropping the diversity term, dropping the cognitive-load term, and an
//!   additive combination (the alternative Tofallis [37] argues against).
//! * **ablation2** — clustering's contribution: the hybrid MCCS pipeline
//!   vs coarse-only vs a *random partition* of the same granularity.
//! * **ablation3** — random-walk count `x` sensitivity (Algorithm 4).
//! * **ablation4** — the §3.3 query-log extension: log-aware vs oblivious
//!   selection on a log-skewed workload.

use crate::common::{harness_clustering, run_pipeline};
use crate::exp01::mean_compactness;
use crate::exp07::prepare;
use crate::report::{f2, pct, secs, Report, Table};
use crate::scale::Scale;
use catapult_cluster::{cluster_graphs, ClusteringConfig, Strategy};
use catapult_core::{find_canned_patterns, PatternBudget, QueryLog, ScoreVariant, SelectionConfig};
use catapult_csg::build_csgs;
use catapult_datasets::{aids_profile, generate, random_queries};
use catapult_eval::measures::{mean_cog, mean_diversity};
use catapult_eval::WorkloadEvaluation;
use catapult_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quality_row(
    name: String,
    patterns: &[Graph],
    queries: &[Graph],
    pgt: std::time::Duration,
) -> Vec<String> {
    let ev = WorkloadEvaluation::evaluate(patterns, queries);
    vec![
        name,
        pct(ev.mean_reduction() * 100.0),
        pct(ev.missed_percentage()),
        f2(mean_diversity(patterns)),
        f2(mean_cog(patterns)),
        secs(pgt),
    ]
}

const QUALITY_HEADER: [&str; 6] = ["config", "avg_mu", "MP", "div", "cog", "PGT"];

/// ablation1 — score-term ablation.
pub fn run_score_ablation(scale: Scale) -> Report {
    let db = generate(&aids_profile(), scale.size(120), 1101).graphs;
    let csgs = prepare(&db, 1102);
    let queries = random_queries(&db, scale.queries(60), (4, 25), 1103);
    let mut table = Table::new(&QUALITY_HEADER);
    let mut divs: Vec<(ScoreVariant, f64)> = Vec::new();
    for variant in [
        ScoreVariant::Full,
        ScoreVariant::NoDiversity,
        ScoreVariant::NoCognitiveLoad,
        ScoreVariant::Additive,
    ] {
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 8, 12).unwrap(),
            walks: scale.walks(),
            variant,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1104);
        let sel = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        let pats = sel.patterns();
        divs.push((variant, mean_diversity(&pats)));
        table.row(quality_row(
            format!("{variant:?}"),
            &pats,
            &queries,
            sel.elapsed,
        ));
    }
    let full_div = divs
        .iter()
        .find(|(v, _)| *v == ScoreVariant::Full)
        .map(|&(_, d)| d)
        .unwrap_or(0.0);
    let nodiv_div = divs
        .iter()
        .find(|(v, _)| *v == ScoreVariant::NoDiversity)
        .map(|&(_, d)| d)
        .unwrap_or(0.0);
    Report {
        id: "ablation1",
        title: "Score-term ablation (Eq. 2 design)".into(),
        tables: vec![("score-terms".into(), table)],
        notes: vec![format!(
            "pattern-set diversity: full {full_div:.2} vs no-div term {nodiv_div:.2} — the div term is what keeps the panel varied"
        )],
    }
}

/// A random partition with the same expected granularity as the pipeline.
fn random_partition<R: Rng>(n: usize, max_size: usize, rng: &mut R) -> Vec<Vec<u32>> {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    use rand::seq::SliceRandom;
    ids.shuffle(rng);
    ids.chunks(max_size.max(1)).map(|c| c.to_vec()).collect()
}

/// ablation2 — clustering's contribution to pattern quality.
pub fn run_clustering_ablation(scale: Scale) -> Report {
    let db = generate(&aids_profile(), scale.size(120), 1201).graphs;
    let queries = random_queries(&db, scale.queries(60), (4, 25), 1202);
    let budget = || PatternBudget::new(3, 8, 12).unwrap();
    let mut table = Table::new(&[
        "config",
        "avg_mu",
        "MP",
        "div",
        "cog",
        "PGT",
        "xi_0.5",
        "dist(hybrid)",
    ]);

    let mut hybrid_reference: Option<Vec<Vec<u32>>> = None;
    for (name, strategy) in [
        (
            "hybrid-mccs",
            Some(Strategy::Hybrid(catapult_cluster::SimilarityKind::Mccs)),
        ),
        ("coarse-only", Some(Strategy::CoarseOnly)),
        ("random-partition", None),
    ] {
        let mut rng = StdRng::seed_from_u64(1203);
        let clusters = match strategy {
            Some(s) => {
                let cfg = ClusteringConfig {
                    strategy: s,
                    ..harness_clustering(20)
                };
                cluster_graphs(&db, &cfg, &mut rng).clusters
            }
            None => random_partition(db.len(), 20, &mut rng),
        };
        let csgs = build_csgs(&db, &clusters);
        let xi = mean_compactness(&db, &clusters)[1];
        // Misclassification distance to the hybrid reference partition
        // (Lemma 4.2's quality notion).
        let dist = match &hybrid_reference {
            None => {
                hybrid_reference = Some(clusters.clone());
                0.0
            }
            Some(reference) => catapult_cluster::quality::misclassification_distance(
                reference,
                &clusters,
                db.len(),
            ),
        };
        let sel = find_canned_patterns(
            &db,
            &csgs,
            &SelectionConfig {
                budget: budget(),
                walks: scale.walks(),
                ..Default::default()
            },
            &mut rng,
        );
        let mut row = quality_row(name.into(), &sel.patterns(), &queries, sel.elapsed);
        row.push(f2(xi));
        row.push(f2(dist));
        table.row(row);
    }
    Report {
        id: "ablation2",
        title: "Clustering ablation (hybrid vs coarse vs random partition)".into(),
        tables: vec![("clustering".into(), table)],
        notes: vec![
            "clustering's benefit concentrates in CSG compactness (xi) and hence summary size / \
             selection cost (paper Fig. 7); on a homogeneous synthetic repository the final \
             pattern quality is less sensitive to the partition than the paper's diverse real \
             data"
                .into(),
        ],
    }
}

/// ablation3 — walk-count sensitivity.
pub fn run_walks_ablation(scale: Scale) -> Report {
    let db = generate(&aids_profile(), scale.size(120), 1301).graphs;
    let csgs = prepare(&db, 1302);
    let queries = random_queries(&db, scale.queries(60), (4, 25), 1303);
    let mut table = Table::new(&QUALITY_HEADER);
    for walks in [5usize, 20, 80] {
        let mut rng = StdRng::seed_from_u64(1304);
        let sel = find_canned_patterns(
            &db,
            &csgs,
            &SelectionConfig {
                budget: PatternBudget::new(3, 8, 12).unwrap(),
                walks,
                ..Default::default()
            },
            &mut rng,
        );
        table.row(quality_row(
            format!("x={walks}"),
            &sel.patterns(),
            &queries,
            sel.elapsed,
        ));
    }
    Report {
        id: "ablation3",
        title: "Random-walk count sensitivity (Algorithm 4's x)".into(),
        tables: vec![("walks".into(), table)],
        notes: vec![
            "PGT grows ~linearly with x; quality saturates once the library stabilizes the FCP"
                .into(),
        ],
    }
}

/// ablation4 — the §3.3 query-log extension.
pub fn run_querylog_ablation(scale: Scale) -> Report {
    let db = generate(&aids_profile(), scale.size(120), 1401).graphs;
    let csgs = prepare(&db, 1402);
    // A skewed log: users keep asking variations drawn from a small slice
    // of the repository.
    let log_source: Vec<Graph> = db[..db.len() / 8].to_vec();
    let logged = random_queries(&log_source, scale.queries(40), (4, 15), 1403);
    // Future workload drawn from the same slice (the log is predictive).
    let future = random_queries(&log_source, scale.queries(60), (4, 15), 1404);

    let mut table = Table::new(&QUALITY_HEADER);
    for (name, log) in [
        ("log-oblivious", None),
        ("log-aware", Some(QueryLog::new(logged))),
    ] {
        let cfg = SelectionConfig {
            budget: PatternBudget::new(3, 8, 12).unwrap(),
            walks: scale.walks(),
            query_log: log,
            log_weight: 4.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1405);
        let sel = find_canned_patterns(&db, &csgs, &cfg, &mut rng);
        table.row(quality_row(
            name.into(),
            &sel.patterns(),
            &future,
            sel.elapsed,
        ));
    }
    Report {
        id: "ablation4",
        title: "Query-log extension (§3.3 remark): oblivious vs log-aware".into(),
        tables: vec![("querylog".into(), table)],
        notes: vec![
            "with a predictive log, boosting frequently-queried patterns should lower MP / raise \
             mu on the future workload drawn from the same distribution"
                .into(),
        ],
    }
}

/// End-to-end pipeline quality across seeds (variance check used by the
/// EXPERIMENTS.md methodology section).
pub fn run_seed_stability(scale: Scale) -> Report {
    let db = generate(&aids_profile(), scale.size(120), 1501).graphs;
    let queries = random_queries(&db, scale.queries(60), (4, 25), 1502);
    let mut table = Table::new(&["seed", "avg_mu", "MP", "div", "cog"]);
    let mut mus = Vec::new();
    for seed in [1u64, 2, 3] {
        let result = run_pipeline(
            &db,
            PatternBudget::new(3, 8, 12).unwrap(),
            scale.walks(),
            seed,
        );
        let pats = result.patterns();
        let ev = WorkloadEvaluation::evaluate(&pats, &queries);
        mus.push(ev.mean_reduction());
        table.row(vec![
            seed.to_string(),
            pct(ev.mean_reduction() * 100.0),
            pct(ev.missed_percentage()),
            f2(mean_diversity(&pats)),
            f2(mean_cog(&pats)),
        ]);
    }
    let spread = (catapult_eval::stats::max(&mus)
        - mus.iter().copied().fold(f64::INFINITY, f64::min))
        * 100.0;
    Report {
        id: "ablation5",
        title: "Seed stability of the randomized pipeline".into(),
        tables: vec![("seeds".into(), table)],
        notes: vec![format!("avg_mu spread across seeds: {spread:.1} points")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_ablation_covers_all_variants() {
        let r = run_score_ablation(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 4);
    }

    #[test]
    fn clustering_ablation_has_three_rows() {
        let r = run_clustering_ablation(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 3);
    }

    #[test]
    fn walks_ablation_has_three_rows() {
        let r = run_walks_ablation(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 3);
    }

    #[test]
    fn querylog_ablation_has_two_rows() {
        let r = run_querylog_ablation(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 2);
    }

    #[test]
    fn seed_stability_reports_spread() {
        let r = run_seed_stability(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 3);
        assert!(r.notes[0].contains("spread"));
    }

    #[test]
    fn random_partition_partitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let parts = random_partition(23, 5, &mut rng);
        let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        assert!(parts.iter().all(|p| p.len() <= 5));
    }
}
