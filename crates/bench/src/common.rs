//! Shared helpers for the experiment runners.

use catapult_cluster::{ClusteringConfig, SimilarityKind, Strategy};
use catapult_core::{CatapultConfig, CatapultResult, PatternBudget};
use catapult_graph::{Graph, SearchBudget};
use catapult_mining::subtree::SubtreeMinerConfig;

/// Default small-graph-clustering settings tuned for the harness scale:
/// hybrid MCCS with `N = 20` (the paper's default) and a mining support of
/// 10% capped at 3-edge subtree features.
pub fn harness_clustering(max_cluster_size: usize) -> ClusteringConfig {
    ClusteringConfig {
        strategy: Strategy::Hybrid(SimilarityKind::Mccs),
        max_cluster_size,
        miner: SubtreeMinerConfig {
            min_support: 0.1,
            max_edges: 3,
            max_patterns_per_level: 400,
        },
        max_features: 48,
        search: SearchBudget::nodes(30_000),
        sampling: None,
        ..Default::default()
    }
}

/// Run the full pipeline with harness defaults for a given budget.
pub fn run_pipeline(
    db: &[Graph],
    budget: PatternBudget,
    walks: usize,
    seed: u64,
) -> CatapultResult {
    let cfg = CatapultConfig {
        clustering: harness_clustering(20),
        budget,
        walks,
        seed,
        ..Default::default()
    };
    catapult_core::run_catapult(db, &cfg)
}

/// Relabel a whole query set to a uniform blank label (Exp 3 preparation).
pub fn total_steps_unlabeled(queries: &[Graph], panel: &[Graph], cap: usize) -> usize {
    queries
        .iter()
        .map(|q| catapult_eval::formulate_unlabeled(q, panel, cap).steps)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_datasets::{aids_profile, generate};

    #[test]
    fn pipeline_runs_at_smoke_scale() {
        let db = generate(&aids_profile(), 24, 1).graphs;
        let r = run_pipeline(&db, PatternBudget::new(3, 5, 4).unwrap(), 10, 2);
        assert!(!r.patterns().is_empty());
    }
}
