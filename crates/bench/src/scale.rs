//! Experiment scale presets.
//!
//! The paper runs on 10K–1M-graph repositories and wall-clock budgets of
//! hours. The harness reproduces every figure at reduced scale: dataset
//! sizes are divided by a constant factor per experiment while keeping the
//! paper's *relative* axis spacing, so the qualitative shapes (who wins,
//! where crossovers fall) are preserved. EXPERIMENTS.md records the scale
//! used for each reported number.

/// How big to run an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for CI and Criterion benches (seconds).
    Smoke,
    /// Default harness scale (a few minutes for the full suite).
    Quick,
    /// Larger scale for better statistics (tens of minutes).
    Full,
}

impl Scale {
    /// Multiply a base (Quick) size by the scale factor.
    pub fn size(&self, quick: usize) -> usize {
        match self {
            Scale::Smoke => (quick / 10).max(6),
            Scale::Quick => quick,
            Scale::Full => quick * 4,
        }
    }

    /// Query-workload size for the scale.
    pub fn queries(&self, quick: usize) -> usize {
        match self {
            Scale::Smoke => (quick / 10).max(5),
            Scale::Quick => quick,
            Scale::Full => quick * 2,
        }
    }

    /// Random walks per (CSG, size) pair.
    pub fn walks(&self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Quick => 40,
            Scale::Full => 100,
        }
    }

    /// The CLI token naming this scale (inverse of [`parse`](Self::parse)).
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Parse from a CLI token.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_monotonically() {
        assert!(Scale::Smoke.size(100) < Scale::Quick.size(100));
        assert!(Scale::Quick.size(100) < Scale::Full.size(100));
        assert_eq!(Scale::Quick.size(100), 100);
    }

    #[test]
    fn smoke_has_floors() {
        assert_eq!(Scale::Smoke.size(10), 6);
        assert_eq!(Scale::Smoke.queries(10), 5);
    }

    #[test]
    fn parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("bogus"), None);
    }
}
