//! Exp 4 — (Simulated) user study (Table 1 + Fig. 10).
//!
//! Five queries per GUI with paper-matched edge counts, each formulated by
//! 5 simulated participants per interface (see `catapult_eval::userstudy`
//! and DESIGN.md §3 for the simulation rationale). Reported: mean QFT and
//! steps per query for the GUI panel vs CATAPULT's panel.

use crate::common::run_pipeline;
use crate::report::{f2, Report, Table};
use crate::scale::Scale;
use catapult_core::PatternBudget;
use catapult_datasets::{emol_profile, generate, pubchem_profile, random_queries};
use catapult_eval::gui::{emol_gui_patterns, pubchem_gui_patterns};
use catapult_eval::steps::DEFAULT_EMBEDDING_CAP;
use catapult_eval::userstudy::run_cell;
use catapult_eval::{formulate, formulate_unlabeled};
use catapult_graph::Graph;

/// The paper's Table 1 query sizes.
pub const PUBCHEM_QUERY_SIZES: [usize; 5] = [18, 29, 34, 39, 40];
/// eMolecules query sizes from Table 1.
pub const EMOL_QUERY_SIZES: [usize; 5] = [12, 17, 23, 33, 35];

/// One query's study cell.
#[derive(Clone, Debug)]
pub struct StudyRow {
    /// GUI name.
    pub gui: &'static str,
    /// Query label (Q1..Q5).
    pub query: String,
    /// Query size in edges.
    pub edges: usize,
    /// (QFT, steps) on the commercial GUI.
    pub gui_result: (f64, usize),
    /// (QFT, steps) with CATAPULT patterns.
    pub catapult_result: (f64, usize),
}

/// Pick, for each target size, the workload query closest in size.
fn pick_queries(pool: &[Graph], targets: &[usize]) -> Vec<Graph> {
    targets
        .iter()
        .map(|&t| {
            pool.iter()
                .min_by_key(|q| q.edge_count().abs_diff(t))
                .expect("non-empty pool")
                .clone()
        })
        .collect()
}

fn study(
    gui: &'static str,
    queries: &[Graph],
    gui_panel: &[Graph],
    cat_panel: &[Graph],
    seed: u64,
) -> Vec<StudyRow> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let f_gui = formulate_unlabeled(q, gui_panel, DEFAULT_EMBEDDING_CAP);
            let relabels: usize = f_gui.used.iter().map(|o| o.vertices.len()).sum();
            let f_cat = formulate(q, cat_panel, DEFAULT_EMBEDDING_CAP);
            let cell_gui = run_cell(&f_gui, gui_panel, relabels, 5, seed + i as u64);
            let cell_cat = run_cell(&f_cat, cat_panel, 0, 5, seed + 100 + i as u64);
            StudyRow {
                gui,
                query: format!("Q{}", i + 1),
                edges: q.edge_count(),
                gui_result: (cell_gui.mean_qft, cell_gui.steps),
                catapult_result: (cell_cat.mean_qft, cell_cat.steps),
            }
        })
        .collect()
}

/// Run Exp 4.
pub fn run(scale: Scale) -> Report {
    let pubchem = generate(&pubchem_profile(), scale.size(120), 401).graphs;
    let emol = generate(&emol_profile(), scale.size(120), 402).graphs;
    let cat_pub = run_pipeline(
        &pubchem,
        PatternBudget::new(3, 8, 12).unwrap(),
        scale.walks(),
        403,
    )
    .patterns();
    let cat_emol = run_pipeline(
        &emol,
        PatternBudget::new(3, 8, 6).unwrap(),
        scale.walks(),
        404,
    )
    .patterns();
    let pool_pub = random_queries(&pubchem, 200, (10, 40), 405);
    let pool_emol = random_queries(&emol, 200, (10, 35), 406);
    let q_pub = pick_queries(&pool_pub, &PUBCHEM_QUERY_SIZES);
    let q_emol = pick_queries(&pool_emol, &EMOL_QUERY_SIZES);

    let mut rows = study("PubChem", &q_pub, &pubchem_gui_patterns(), &cat_pub, 407);
    rows.extend(study("eMol", &q_emol, &emol_gui_patterns(), &cat_emol, 408));
    into_report(rows)
}

fn into_report(rows: Vec<StudyRow>) -> Report {
    let mut table = Table::new(&[
        "gui",
        "query",
        "|E|",
        "QFT(gui)s",
        "steps(gui)",
        "QFT(CAT)s",
        "steps(CAT)",
    ]);
    for r in &rows {
        table.row(vec![
            r.gui.to_string(),
            r.query.clone(),
            r.edges.to_string(),
            f2(r.gui_result.0),
            r.gui_result.1.to_string(),
            f2(r.catapult_result.0),
            r.catapult_result.1.to_string(),
        ]);
    }
    let mut notes = Vec::new();
    for gui in ["PubChem", "eMol"] {
        let sel: Vec<&StudyRow> = rows.iter().filter(|r| r.gui == gui).collect();
        if sel.is_empty() {
            continue;
        }
        let qft_red: f64 = sel
            .iter()
            .map(|r| (r.gui_result.0 - r.catapult_result.0) / r.gui_result.0)
            .fold(f64::MIN, f64::max);
        let step_red: f64 = sel
            .iter()
            .map(|r| (r.gui_result.1 as f64 - r.catapult_result.1 as f64) / r.gui_result.1 as f64)
            .fold(f64::MIN, f64::max);
        notes.push(format!(
            "{gui}: max QFT reduction {:.0}%, max step reduction {:.0}% (paper: up to 78%/81% PubChem, 74%/75% eMol)",
            qft_red * 100.0,
            step_red * 100.0
        ));
    }
    Report {
        id: "exp4",
        title: "Simulated user study (Table 1 + Fig. 10)".into(),
        tables: vec![("user-study".into(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_ten_cells() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 10);
    }

    #[test]
    fn pick_queries_matches_targets() {
        let pool = random_queries(&generate(&pubchem_profile(), 30, 1).graphs, 100, (5, 40), 2);
        let picked = pick_queries(&pool, &[12, 30]);
        assert_eq!(picked.len(), 2);
        assert!(picked[0].edge_count().abs_diff(12) <= picked[1].edge_count().abs_diff(12));
    }
}
