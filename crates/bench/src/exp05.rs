//! Exp 5 — Coverage vs |P| (Fig. 11).
//!
//! scov and lcov of CATAPULT pattern sets as |P| grows, against the
//! top-|P| frequent-edge baseline. Paper shape: frequent edges win on
//! scov (single edges occur everywhere); CATAPULT's lcov is competitive
//! and all values sit in the high-90% band while CATAPULT's patterns also
//! support pattern-at-a-time formulation.

use crate::common::run_pipeline;
use crate::report::{f3, Report, Table};
use crate::scale::Scale;
use catapult_core::PatternBudget;
use catapult_datasets::{aids_profile, generate, pubchem_profile};
use catapult_eval::measures::{label_coverage, subgraph_coverage};
use catapult_graph::Graph;
use catapult_mining::EdgeLabelStats;

/// One (dataset, |P|) coverage measurement.
#[derive(Clone, Debug)]
pub struct CoverageRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Pattern budget γ.
    pub p: usize,
    /// (scov, lcov) of the CATAPULT pattern set.
    pub catapult: (f64, f64),
    /// (scov, lcov) of the top-|P| frequent edges.
    pub top_edges: (f64, f64),
}

/// Measure one dataset across the |P| sweep.
pub fn sweep(
    dataset: &'static str,
    db: &[Graph],
    ps: &[usize],
    walks: usize,
    seed: u64,
) -> Vec<CoverageRow> {
    let stats = EdgeLabelStats::from_graphs(db);
    ps.iter()
        .map(|&p| {
            let pats =
                run_pipeline(db, PatternBudget::new(3, 12, p).unwrap(), walks, seed).patterns();
            let edges = stats.top_k_as_patterns(p);
            CoverageRow {
                dataset,
                p,
                catapult: (subgraph_coverage(&pats, db), label_coverage(&pats, db)),
                top_edges: (subgraph_coverage(&edges, db), label_coverage(&edges, db)),
            }
        })
        .collect()
}

/// Run Exp 5.
pub fn run(scale: Scale) -> Report {
    let aids = generate(&aids_profile(), scale.size(150), 501).graphs;
    let pubchem = generate(&pubchem_profile(), scale.size(150), 502).graphs;
    let ps = [5usize, 10, 20, 30];
    let mut rows = sweep("aids", &aids, &ps, scale.walks(), 503);
    rows.extend(sweep("pubchem", &pubchem, &ps, scale.walks(), 504));
    into_report(rows)
}

fn into_report(rows: Vec<CoverageRow>) -> Report {
    let mut table = Table::new(&[
        "dataset",
        "|P|",
        "scov(CAT)",
        "scov(edges)",
        "lcov(CAT)",
        "lcov(edges)",
    ]);
    for r in &rows {
        table.row(vec![
            r.dataset.to_string(),
            r.p.to_string(),
            f3(r.catapult.0),
            f3(r.top_edges.0),
            f3(r.catapult.1),
            f3(r.top_edges.1),
        ]);
    }
    let mut notes = Vec::new();
    // Shape: scov non-decreasing in |P| for CATAPULT.
    for ds in ["aids", "pubchem"] {
        let series: Vec<&CoverageRow> = rows.iter().filter(|r| r.dataset == ds).collect();
        if let (Some(first), Some(last)) = (series.first(), series.last()) {
            notes.push(format!(
                "{ds}: CATAPULT scov grows {:.3} → {:.3} with |P|; top-edge scov {:.3} (paper: edges ≥ patterns on scov)",
                first.catapult.0, last.catapult.0, last.top_edges.0
            ));
        }
    }
    Report {
        id: "exp5",
        title: "Coverage vs |P| (Fig. 11)".into(),
        tables: vec![("coverage".into(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_has_eight_rows() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 8);
    }

    #[test]
    fn coverage_is_monotone_in_p_for_edges() {
        let db = generate(&aids_profile(), 40, 1).graphs;
        let rows = sweep("aids", &db, &[2, 8], 10, 2);
        assert!(rows[1].top_edges.0 >= rows[0].top_edges.0);
        assert!(rows[1].top_edges.1 >= rows[0].top_edges.1);
    }
}
