//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}", cell, width = widths[i] + 2)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.min(120)))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        let _ = cols;
        Ok(())
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a duration in seconds with 2 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.50s");
    }
}

/// A full experiment report: tables plus free-form notes.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id, e.g. "exp1".
    pub id: &'static str,
    /// Paper artifact reproduced, e.g. "Fig. 7".
    pub title: String,
    /// Named tables.
    pub tables: Vec<(String, Table)>,
    /// Observations to record in EXPERIMENTS.md.
    pub notes: Vec<String>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for (name, table) in &self.tables {
            writeln!(f, "\n-- {name} --")?;
            write!(f, "{table}")?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "\nNotes:")?;
            for n in &self.notes {
                writeln!(f, "  * {n}")?;
            }
        }
        Ok(())
    }
}
