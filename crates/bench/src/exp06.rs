//! Exp 6 — Scalability (Fig. 12).
//!
//! The pipeline over a growing PubChem-like series (the paper's 23K → 1M,
//! scaled down with the same relative spacing), reporting clustering time,
//! PGT, μ_DS (step reduction relative to the smallest dataset's pattern
//! set, negative = larger datasets produce better patterns), and MP.

use crate::common::run_pipeline;
use crate::report::{pct, secs, Report, Table};
use crate::scale::Scale;
use catapult_core::PatternBudget;
use catapult_datasets::{generate, pubchem_profile, random_queries};
use catapult_eval::measures::mean_relative_reduction;
use catapult_eval::WorkloadEvaluation;

/// One dataset-size measurement.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Number of data graphs.
    pub size: usize,
    /// Clustering time.
    pub cluster_time: std::time::Duration,
    /// Pattern generation time.
    pub pgt: std::time::Duration,
    /// μ_DS vs the smallest dataset (0 for the baseline row).
    pub mu_ds: f64,
    /// Missed percentage.
    pub mp: f64,
}

/// Run Exp 6.
pub fn run(scale: Scale) -> Report {
    // Paper ratio 23K : 250K : 500K : 1M ≈ 1 : 10.9 : 21.7 : 43.5; we keep
    // a geometric ladder with the same ordering at tractable size.
    let sizes = [
        scale.size(50),
        scale.size(100),
        scale.size(200),
        scale.size(400),
    ];
    // One shared workload drawn from the smallest repository, as all
    // pattern sets must formulate the same queries for μ_DS.
    let base_db = generate(&pubchem_profile(), sizes[0], 601).graphs;
    let queries = random_queries(&base_db, scale.queries(60), (4, 25), 602);

    let mut rows = Vec::new();
    let mut baseline_eval: Option<WorkloadEvaluation> = None;
    for (i, &n) in sizes.iter().enumerate() {
        let db = generate(&pubchem_profile(), n, 601).graphs;
        let result = run_pipeline(
            &db,
            PatternBudget::new(3, 8, 12).unwrap(),
            scale.walks(),
            603 + i as u64,
        );
        let ev = WorkloadEvaluation::evaluate(&result.patterns(), &queries);
        let mu_ds = match &baseline_eval {
            // μ_DS = (step(DS) − step(23K)) / step(DS) per §6.2; we report
            // the equivalent "how much better than baseline" as
            // mean_relative_reduction(DS, baseline), negated so negative
            // values mean "bigger dataset is better" like the paper.
            Some(base) => -mean_relative_reduction(&ev, base),
            None => 0.0,
        };
        if baseline_eval.is_none() {
            baseline_eval = Some(ev.clone());
        }
        rows.push(ScaleRow {
            size: n,
            cluster_time: result.clustering_time(),
            pgt: result.pattern_generation_time(),
            mu_ds,
            mp: ev.missed_percentage(),
        });
    }
    into_report(rows)
}

fn into_report(rows: Vec<ScaleRow>) -> Report {
    let mut table = Table::new(&["|D|", "cluster_time", "PGT", "mu_DS", "MP"]);
    for r in &rows {
        table.row(vec![
            r.size.to_string(),
            secs(r.cluster_time),
            secs(r.pgt),
            format!("{:.3}", r.mu_ds),
            pct(r.mp),
        ]);
    }
    let mut notes = Vec::new();
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        notes.push(format!(
            "cluster time grows {} → {} with |D| {}× (paper: ~1 order of magnitude for 43×)",
            secs(first.cluster_time),
            secs(last.cluster_time),
            last.size / first.size.max(1)
        ));
        notes.push(format!(
            "MP {} (smallest) vs {} (largest): paper reports lower MP at larger |D|",
            pct(first.mp),
            pct(last.mp)
        ));
    }
    Report {
        id: "exp6",
        title: "Scalability (Fig. 12)".into(),
        tables: vec![("scalability".into(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_four_sizes() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 4);
    }
}
