//! Exp 9 — CATAPULT vs frequent-subgraph patterns (Fig. 17, Appendix C).
//!
//! The baseline "F" mines frequent subgraphs (gaston in the paper; our
//! pattern-growth miner here) at supports {4%, 8%, 12%}, selects |F| = 30
//! patterns of size [3, 12] with ≤ |F|/10 per size, and is compared on
//! workloads Q_x whose infrequent-query fraction x grows 0 → 0.4.
//! Paper shape: F wins at x = 0 (all-frequent queries), CATAPULT catches
//! up and overtakes around x ≈ 0.3; F's MP grows linearly with x while
//! CATAPULT's stays flat; CATAPULT's div ≫ F's.

use crate::common::run_pipeline;
use crate::report::{f2, pct, Report, Table};
use crate::scale::Scale;
use catapult_core::PatternBudget;
use catapult_datasets::{aids_profile, generate, mixed_queries};
use catapult_eval::measures::{mean_diversity, mean_relative_reduction};
use catapult_eval::WorkloadEvaluation;
use catapult_graph::Graph;
use catapult_mining::subgraph::{
    mine_frequent_subgraphs, select_baseline_patterns, SubgraphMinerConfig,
};

/// One (workload, baseline-support) cell.
#[derive(Clone, Debug)]
pub struct BaselineRow {
    /// Infrequent fraction x of the workload.
    pub x: f64,
    /// Baseline support (%) this row compares against.
    pub support: f64,
    /// Mean μ_F: relative step reduction of CATAPULT vs F (positive =
    /// CATAPULT better).
    pub mu_f: f64,
    /// MP of CATAPULT on this workload.
    pub mp_catapult: f64,
    /// MP of F on this workload.
    pub mp_baseline: f64,
}

/// Mine and select the Exp 9 baseline pattern set at `support`.
pub fn baseline_patterns(db: &[Graph], support: f64, total: usize) -> Vec<Graph> {
    let mined = mine_frequent_subgraphs(
        db,
        &SubgraphMinerConfig {
            min_support: support,
            max_edges: 8, // tractable at harness scale; sizes [3,12] in paper
            max_patterns_per_level: 300,
        },
    );
    select_baseline_patterns(&mined, total, 3, 8)
}

/// Exp 9 dataset: AIDS-like but with the label diversity of the real AIDS
/// screen restored. At our reduced scale a carbon-dominated alphabet makes
/// every generic C-chain frequent, so the baseline "F" would trivially
/// match even infrequent queries; raising the hetero rate reproduces the
/// regime the paper evaluates in (infrequent queries are hetero-specific
/// motifs that frequent patterns miss). Documented in EXPERIMENTS.md.
fn exp9_profile() -> catapult_datasets::MoleculeProfile {
    catapult_datasets::MoleculeProfile {
        hetero_rate: 0.35,
        ..aids_profile()
    }
}

/// Run Exp 9.
pub fn run(scale: Scale) -> Report {
    let db = generate(&exp9_profile(), scale.size(120), 901).graphs;
    let catapult = run_pipeline(
        &db,
        PatternBudget::new(3, 8, 30).unwrap(),
        scale.walks(),
        902,
    )
    .patterns();
    let supports = [0.04, 0.08, 0.12];
    let baselines: Vec<(f64, Vec<Graph>)> = supports
        .iter()
        .map(|&s| (s, baseline_patterns(&db, s, 30)))
        .collect();
    let xs = [0.0, 0.1, 0.2, 0.3, 0.4];
    let qsize = scale.queries(25);
    let mut rows = Vec::new();
    let mut div_note = format!(
        "div: CATAPULT {:.2} vs F(8%) {:.2} (paper: 7.4 vs 1.74)",
        mean_diversity(&catapult),
        baselines
            .iter()
            .find(|(s, _)| (*s - 0.08).abs() < 1e-9)
            .map(|(_, p)| mean_diversity(p))
            .unwrap_or(0.0)
    );
    for &x in &xs {
        let queries = mixed_queries(&db, qsize, x, 0.04, (4, 28), 903 + (x * 100.0) as u64);
        if queries.is_empty() {
            continue;
        }
        let ev_cat = WorkloadEvaluation::evaluate(&catapult, &queries);
        for (s, pats) in &baselines {
            let ev_f = WorkloadEvaluation::evaluate(pats, &queries);
            rows.push(BaselineRow {
                x,
                support: s * 100.0,
                mu_f: mean_relative_reduction(&ev_f, &ev_cat),
                mp_catapult: ev_cat.missed_percentage(),
                mp_baseline: ev_f.missed_percentage(),
            });
        }
    }
    if rows.is_empty() {
        div_note.push_str(" [no workloads generated at this scale]");
    }
    into_report(rows, div_note)
}

fn into_report(rows: Vec<BaselineRow>, div_note: String) -> Report {
    let mut table = Table::new(&["x", "F support", "mu_F", "MP(CAT)", "MP(F)"]);
    for r in &rows {
        table.row(vec![
            format!("Q{:.1}", r.x),
            pct(r.support),
            f2(r.mu_f),
            pct(r.mp_catapult),
            pct(r.mp_baseline),
        ]);
    }
    let mut notes = vec![div_note];
    // Shape: baseline MP should grow with x; catapult MP roughly flat.
    let at = |x: f64, s: f64| {
        rows.iter()
            .find(|r| (r.x - x).abs() < 1e-9 && (r.support - s).abs() < 1e-9)
    };
    if let (Some(lo), Some(hi)) = (at(0.0, 4.0), at(0.4, 4.0)) {
        notes.push(format!(
            "F(4%): MP {} at x=0 → {} at x=0.4 (paper: linear growth); CATAPULT MP {} → {} (paper: ~flat)",
            pct(lo.mp_baseline),
            pct(hi.mp_baseline),
            pct(lo.mp_catapult),
            pct(hi.mp_catapult)
        ));
        notes.push(format!(
            "mu_F at x=0: {:.2} (paper: negative, F wins) vs x=0.4: {:.2} (paper: positive, CATAPULT wins)",
            lo.mu_f, hi.mu_f
        ));
    }
    Report {
        id: "exp9",
        title: "CATAPULT vs frequent subgraphs (Fig. 17)".into(),
        tables: vec![("baseline".into(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_produces_grid() {
        let r = run(Scale::Smoke);
        // 5 workloads × 3 supports (some workloads may fall short at
        // smoke scale, so allow ≥ 3).
        assert!(r.tables[0].1.len() >= 3);
    }

    #[test]
    fn baseline_set_obeys_quota() {
        let db = generate(&aids_profile(), 30, 1).graphs;
        let pats = baseline_patterns(&db, 0.2, 12);
        assert!(pats.len() <= 12);
        for p in &pats {
            assert!((3..=8).contains(&p.edge_count()));
        }
    }
}
