//! Exp 2 — Sampling vs no sampling (Fig. 8 + Fig. 9).
//!
//! Runs the full pipeline on AIDS-like repositories with §4.3 sampling on
//! and off, reporting max/avg μ, MP, and PGT (Fig. 8) plus CSG compactness
//! and clustering time (Fig. 9). The paper's finding: sampling leaves μ,
//! MP, and ξ essentially unchanged while cutting PGT by up to two orders
//! of magnitude.

use crate::common::harness_clustering;
use crate::exp01::mean_compactness;
use crate::report::{f3, pct, secs, Report, Table};
use crate::scale::Scale;
use catapult_cluster::sampling::{EagerConfig, LazyConfig};
use catapult_cluster::SamplingConfig;
use catapult_core::{CatapultConfig, PatternBudget};
use catapult_datasets::{aids_profile, generate, random_queries};
use catapult_eval::WorkloadEvaluation;

/// One (dataset, sampling-mode) measurement.
#[derive(Clone, Debug)]
pub struct SamplingRow {
    /// Cell name, e.g. "smallS" / "smallnoS".
    pub name: String,
    /// Max reduction ratio over the workload (%).
    pub max_mu: f64,
    /// Mean reduction ratio over the workload (%).
    pub avg_mu: f64,
    /// Missed percentage.
    pub mp: f64,
    /// Pattern generation time.
    pub pgt: std::time::Duration,
    /// Clustering time.
    pub cluster_time: std::time::Duration,
    /// Mean ξ at t ∈ {0.4, 0.5, 0.6}.
    pub xi: [f64; 3],
}

/// The harness' sampling settings: eager per the paper; the Cochran `e`
/// is scaled so the representative sample is a fraction of our reduced
/// repository, mirroring the paper's relative shrinkage at 10K–40K scale.
pub fn harness_sampling(db_size: usize) -> SamplingConfig {
    // Target |S_sample| ≈ db_size / 4  ⇒  e = Z·√(pq / target).
    let target = (db_size as f64 / 4.0).max(8.0);
    let e = 1.65 * (0.25f64 / target).sqrt();
    SamplingConfig {
        eager: EagerConfig::default(),
        lazy: LazyConfig { z: 1.65, p: 0.5, e },
    }
}

/// Run Exp 2.
pub fn run(scale: Scale) -> Report {
    let datasets = [
        (
            "small",
            generate(&aids_profile(), scale.size(80), 201).graphs,
        ),
        (
            "large",
            generate(&aids_profile(), scale.size(240), 202).graphs,
        ),
    ];
    let budget = PatternBudget::paper_default();
    let mut rows = Vec::new();
    for (name, db) in &datasets {
        let queries = random_queries(db, scale.queries(80), (4, 30), 203);
        for sampled in [true, false] {
            let mut clustering = harness_clustering(20);
            if sampled {
                clustering.sampling = Some(harness_sampling(db.len()));
            }
            let cfg = CatapultConfig {
                clustering,
                budget: budget.clone(),
                walks: scale.walks(),
                seed: 204,
                ..Default::default()
            };
            let result = catapult_core::run_catapult(db, &cfg);
            let ev = WorkloadEvaluation::evaluate(&result.patterns(), &queries);
            let xi = mean_compactness(db, &result.clustering.clusters);
            rows.push(SamplingRow {
                name: format!("{name}{}", if sampled { "S" } else { "noS" }),
                max_mu: ev.max_reduction() * 100.0,
                avg_mu: ev.mean_reduction() * 100.0,
                mp: ev.missed_percentage(),
                pgt: result.pattern_generation_time(),
                cluster_time: result.clustering_time(),
                xi,
            });
        }
    }
    into_report(rows)
}

fn into_report(rows: Vec<SamplingRow>) -> Report {
    let mut fig8 = Table::new(&["cell", "max_mu", "avg_mu", "MP", "PGT"]);
    let mut fig9 = Table::new(&["cell", "xi_0.4", "xi_0.5", "xi_0.6", "cluster_time"]);
    for r in &rows {
        fig8.row(vec![
            r.name.clone(),
            pct(r.max_mu),
            pct(r.avg_mu),
            pct(r.mp),
            secs(r.pgt),
        ]);
        fig9.row(vec![
            r.name.clone(),
            f3(r.xi[0]),
            f3(r.xi[1]),
            f3(r.xi[2]),
            secs(r.cluster_time),
        ]);
    }
    let mut notes = Vec::new();
    for base in ["small", "large"] {
        let s = rows.iter().find(|r| r.name == format!("{base}S"));
        let n = rows.iter().find(|r| r.name == format!("{base}noS"));
        if let (Some(s), Some(n)) = (s, n) {
            notes.push(format!(
                "{base}: sampling changes avg mu by {:.1} points and MP by {:.1} points; PGT {} (S) vs {} (noS)",
                (s.avg_mu - n.avg_mu).abs(),
                (s.mp - n.mp).abs(),
                secs(s.pgt),
                secs(n.pgt)
            ));
        }
    }
    Report {
        id: "exp2",
        title: "Sampling vs no sampling (Fig. 8 + Fig. 9)".into(),
        tables: vec![("fig8".into(), fig8), ("fig9".into(), fig9)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_produces_four_cells() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 4);
        assert_eq!(r.tables[1].1.len(), 4);
    }

    #[test]
    fn sampling_config_scales_with_db() {
        let small = harness_sampling(100);
        let large = harness_sampling(10_000);
        // Bigger db ⇒ bigger representative sample ⇒ smaller e.
        assert!(large.lazy.e < small.lazy.e);
    }
}
