//! Per-kernel microbenchmarks: the search kernels the fine-clustering hot
//! path spends its time in, measured in isolation.
//!
//! Each entry times one kernel — MCS / MCCS (pruned and reference
//! unpruned), subgraph-isomorphism checks, and canonical-form hashing —
//! over a fixed set of AIDS-profile molecule pairs, and reports the
//! median-of-N wall clock plus the number of search probes one sweep
//! spends (read back through the observability recorder, so the numbers
//! are the same counters a CLI run emits). Results land in
//! `BENCH_kernels.json`.
//!
//! The pruned/unpruned split is the before/after of the edge-label
//! upper-bound pruning ([`McsConfig::pruning`]): both variants run the
//! identical workload under the identical budget, so the ratio of their
//! medians is the kernel-level speedup, and the probe counts show where
//! it comes from (pruning rejects candidate pairs before branching, so
//! probes drop with the wall clock).

use catapult_datasets::{aids_profile, generate};
use catapult_graph::canonical::canonical_form;
use catapult_graph::iso::are_isomorphic_tagged;
use catapult_graph::mcs::{mcs, McsConfig};
use catapult_graph::{Graph, SearchBudget};
use catapult_obs::{Recorder, Stopwatch};
use std::time::Duration;

/// One kernel variant measured over the shared pair workload.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// Kernel name ("mcs", "mccs", "iso", "canonical").
    pub kernel: &'static str,
    /// Variant within the kernel ("pruned", "unpruned", or "-" where the
    /// distinction does not apply).
    pub variant: &'static str,
    /// Median-of-N wall clock for one full sweep over the workload.
    pub median: Duration,
    /// Timed repetitions behind the median (after warmup).
    pub reps: usize,
    /// Search probes (budget-metered node expansions) one sweep spends;
    /// 0 for kernels that run no budgeted search.
    pub probes: u64,
    /// Workload size: graph pairs per sweep (graphs for "canonical").
    pub pairs: usize,
}

impl KernelBench {
    /// Probes per second of median wall clock (0 when unmetered).
    pub fn probes_per_sec(&self) -> f64 {
        let secs = self.median.as_secs_f64();
        if secs == 0.0 || self.probes == 0 {
            return 0.0;
        }
        self.probes as f64 / secs
    }
}

/// Warmup sweeps discarded before timing starts — same rationale as the
/// parallel bench: the first sweep pays allocator growth and cold caches.
const WARMUP_REPS: usize = 1;

/// Per-pair search budget. Large enough that the pruned search finishes
/// exactly on every workload pair, small enough that the reference
/// unpruned variant cannot wedge the harness on a hard pair (it reports
/// `BudgetExhausted` there instead, which is itself part of the story:
/// the bound turns budget-tripped pairs into proven-exact ones).
const PAIR_BUDGET: u64 = 20_000;

/// Graphs drawn into the pair workload; all unordered pairs of these are
/// measured, so 12 graphs → 66 pairs per sweep.
const WORKLOAD_GRAPHS: usize = 12;

/// Median-of-`reps` wall clock of `f`, after [`WARMUP_REPS`] untimed runs.
fn time_median(reps: usize, mut f: impl FnMut()) -> Duration {
    for _ in 0..WARMUP_REPS {
        f();
    }
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Stopwatch::start();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    median_of_sorted(&samples)
}

/// Median of a sorted, non-empty sample list (even length → mean of the
/// middle pair).
fn median_of_sorted(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    debug_assert!(n > 0, "median of empty sample set");
    let mid = n / 2;
    if n % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// Probes one instrumented sweep of `f` spends, read back through the
/// stage counters the budget meter flushes.
fn probes_of(f: impl FnOnce(&SearchBudget)) -> u64 {
    let rec = Recorder::enabled();
    let budget = SearchBudget::nodes(PAIR_BUDGET).with_probe(rec.stage_probe("bench_kernels"));
    f(&budget);
    rec.snapshot()
        .map_or(0, |s| s.stage_metric_total("bench_kernels", "probes"))
}

/// All unordered pairs (i < j) of the first [`WORKLOAD_GRAPHS`] graphs.
fn pair_indices(n: usize) -> Vec<(usize, usize)> {
    let n = n.min(WORKLOAD_GRAPHS);
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((i, j));
        }
    }
    pairs
}

fn mcs_sweep(
    db: &[Graph],
    pairs: &[(usize, usize)],
    connected: bool,
    pruning: bool,
    budget: &SearchBudget,
) {
    for &(i, j) in pairs {
        let r = mcs(
            &db[i],
            &db[j],
            McsConfig {
                connected,
                budget: budget.clone(),
                pruning,
            },
        );
        std::hint::black_box(r.edges);
    }
}

/// Run every kernel; `scale` multiplies the generated repository size
/// (the pair workload itself stays fixed at [`WORKLOAD_GRAPHS`] graphs so
/// medians stay comparable across scales — `scale` only diversifies the
/// molecule pool the workload is drawn from).
pub fn run(scale: usize, reps: usize) -> Vec<KernelBench> {
    run_recorded(scale, reps, &Recorder::disabled())
}

/// [`run`] under an observability recorder: the timed region becomes a
/// `bench_kernels` span in a `--metrics-out` manifest.
pub fn run_recorded(scale: usize, reps: usize, recorder: &Recorder) -> Vec<KernelBench> {
    let _span = recorder.span("bench_kernels");
    let db = generate(&aids_profile(), 60 * scale.max(1), 3);
    let graphs = &db.graphs;
    let pairs = pair_indices(graphs.len());
    let plain = SearchBudget::nodes(PAIR_BUDGET);
    let mut out = Vec::new();

    for (kernel, connected) in [("mcs", false), ("mccs", true)] {
        for (variant, pruning) in [("pruned", true), ("unpruned", false)] {
            let _span = recorder.span("bench_kernels.mcs_variant");
            let median = time_median(reps, || {
                mcs_sweep(graphs, &pairs, connected, pruning, &plain)
            });
            let probes = probes_of(|b| mcs_sweep(graphs, &pairs, connected, pruning, b));
            out.push(KernelBench {
                kernel,
                variant,
                median,
                reps: reps.max(1),
                probes,
                pairs: pairs.len(),
            });
        }
    }

    {
        let _span = recorder.span("bench_kernels.iso");
        // Self-pairs ride along: cross pairs mostly die on the cheap
        // invariant pre-filters (which is the point of measuring them),
        // while a graph against itself forces a real search.
        let n = graphs.len().min(WORKLOAD_GRAPHS);
        let sweep = |budget: &SearchBudget| {
            for &(i, j) in &pairs {
                let (same, _) = are_isomorphic_tagged(&graphs[i], &graphs[j], budget);
                std::hint::black_box(same);
            }
            for g in &graphs[..n] {
                let (same, _) = are_isomorphic_tagged(g, g, budget);
                std::hint::black_box(same);
            }
        };
        let median = time_median(reps, || sweep(&plain));
        let probes = probes_of(sweep);
        out.push(KernelBench {
            kernel: "iso",
            variant: "-",
            median,
            reps: reps.max(1),
            probes,
            pairs: pairs.len() + n,
        });
    }

    {
        let _span = recorder.span("bench_kernels.canonical");
        let n = graphs.len().min(WORKLOAD_GRAPHS);
        let median = time_median(reps, || {
            for g in &graphs[..n] {
                std::hint::black_box(canonical_form(g));
            }
        });
        out.push(KernelBench {
            kernel: "canonical",
            variant: "-",
            median,
            reps: reps.max(1),
            probes: 0,
            pairs: n,
        });
    }

    out
}

/// Hand-rolled JSON (the workspace has no serde): stable key order, one
/// entry per kernel variant.
pub fn to_json(benches: &[KernelBench]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"schema_version\": {},\n",
        catapult_obs::SCHEMA_VERSION
    ));
    s.push_str(&crate::host_fingerprint_json());
    s.push_str(&format!("  \"warmup_reps\": {WARMUP_REPS},\n"));
    s.push_str(&format!("  \"pair_budget_nodes\": {PAIR_BUDGET},\n"));
    s.push_str("  \"entries\": [\n");
    for (i, b) in benches.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"secs_median\": {:.6}, \"reps\": {}, \"probes\": {}, \"probes_per_sec\": {:.1}, \"pairs\": {}}}{}\n",
            b.kernel,
            b.variant,
            b.median.as_secs_f64(),
            b.reps,
            b.probes,
            b.probes_per_sec(),
            b.pairs,
            if i + 1 == benches.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_serializes() {
        // Tiny run: harness correctness, not the numbers.
        let benches = run(1, 1);
        // mcs/mccs × pruned/unpruned + iso + canonical.
        assert_eq!(benches.len(), 6);
        let json = to_json(&benches);
        assert_eq!(
            catapult_obs::schema_version_of(&json),
            Some(catapult_obs::SCHEMA_VERSION),
            "bench JSON must be schema-versioned: {json}"
        );
        assert!(json.contains("\"unpruned\""));
        assert!(json.contains("\"canonical\""));
        assert!(json.contains("\"probes_per_sec\""));
    }

    #[test]
    fn search_kernels_report_probes() {
        let benches = run(1, 1);
        for b in benches.iter().filter(|b| b.kernel != "canonical") {
            assert!(
                b.probes > 0,
                "{}/{} ran a budgeted search; its meter must flush probes",
                b.kernel,
                b.variant
            );
        }
        // Pruning can only remove work relative to the reference search
        // on the identical workload.
        let probes_of = |kernel: &str, variant: &str| {
            benches
                .iter()
                .find(|b| b.kernel == kernel && b.variant == variant)
                .map(|b| b.probes)
                .unwrap_or(0)
        };
        for kernel in ["mcs", "mccs"] {
            assert!(
                probes_of(kernel, "pruned") <= probes_of(kernel, "unpruned"),
                "{kernel}: pruned search must not probe more than the reference"
            );
        }
    }

    #[test]
    fn median_handles_odd_even_and_outliers() {
        let ms = Duration::from_millis;
        assert_eq!(median_of_sorted(&[ms(5)]), ms(5));
        assert_eq!(median_of_sorted(&[ms(1), ms(3), ms(500)]), ms(3));
        assert_eq!(median_of_sorted(&[ms(2), ms(4)]), ms(3));
    }
}
