//! Exp 3 — Comparison with commercial GUIs (§6.2).
//!
//! CATAPULT-selected patterns (matched in cardinality and size range to
//! each GUI's panel: 12 patterns of size [3,8] vs PubChem, 6 vs
//! eMolecules) against the manually-curated, unlabeled GUI pattern sets,
//! under the vertex-relabelling step model. Reported: average cognitive
//! load, diversity, MP for both sides, and the relative reduction μ_G.

use crate::common::run_pipeline;
use crate::report::{f2, pct, Report, Table};
use crate::scale::Scale;
use catapult_core::PatternBudget;
use catapult_datasets::{emol_profile, generate, pubchem_profile, random_queries};
use catapult_eval::gui::{emol_gui_patterns, pubchem_gui_patterns};
use catapult_eval::measures::{mean_cog, mean_diversity};
use catapult_eval::steps::DEFAULT_EMBEDDING_CAP;
use catapult_eval::{formulate, formulate_unlabeled};
use catapult_graph::Graph;
use rayon::prelude::*;

/// Comparison of one GUI against CATAPULT on one repository.
#[derive(Clone, Debug)]
pub struct GuiComparison {
    /// GUI name.
    pub gui: &'static str,
    /// Mean cog of the GUI panel / of CATAPULT's panel.
    pub cog: (f64, f64),
    /// Mean diversity of the GUI panel / CATAPULT's panel.
    pub div: (f64, f64),
    /// MP of the GUI panel / CATAPULT's panel (%).
    pub mp: (f64, f64),
    /// Max and mean μ_G (relative step reduction of CATAPULT vs the GUI).
    pub mu_g: (f64, f64),
}

/// Evaluate one GUI cell.
pub fn compare(
    gui: &'static str,
    db: &[Graph],
    gui_panel: &[Graph],
    catapult_panel: &[Graph],
    queries: &[Graph],
) -> GuiComparison {
    let _ = db;
    // Parallel audit: both formulations are pure functions of shared `&`
    // state; ordered collection keeps per-query rows aligned with
    // `queries` across thread counts.
    let per_query: Vec<(usize, usize, bool, bool)> = queries
        .par_iter()
        .map(|q| {
            let f_gui = formulate_unlabeled(q, gui_panel, DEFAULT_EMBEDDING_CAP);
            let f_cat = formulate(q, catapult_panel, DEFAULT_EMBEDDING_CAP);
            (
                f_gui.steps,
                f_cat.steps,
                f_gui.used_any_pattern(),
                f_cat.used_any_pattern(),
            )
        })
        .collect();
    let n = per_query.len().max(1) as f64;
    let mp_gui = per_query.iter().filter(|r| !r.2).count() as f64 / n * 100.0;
    let mp_cat = per_query.iter().filter(|r| !r.3).count() as f64 / n * 100.0;
    let ratios: Vec<f64> = per_query
        .iter()
        .map(|&(g, c, _, _)| {
            if g == 0 {
                0.0
            } else {
                (g as f64 - c as f64) / g as f64
            }
        })
        .collect();
    GuiComparison {
        gui,
        cog: (mean_cog(gui_panel), mean_cog(catapult_panel)),
        div: (mean_diversity(gui_panel), mean_diversity(catapult_panel)),
        mp: (mp_gui, mp_cat),
        mu_g: (
            ratios.iter().copied().fold(f64::MIN, f64::max),
            catapult_eval::stats::mean(&ratios),
        ),
    }
}

/// Run Exp 3.
pub fn run(scale: Scale) -> Report {
    let pubchem = generate(&pubchem_profile(), scale.size(150), 301).graphs;
    let emol = generate(&emol_profile(), scale.size(150), 302).graphs;

    // CATAPULT panels matched to each GUI's budget: 12 / 6 patterns,
    // sizes [3, 8] (§6.2).
    let cat_pub = run_pipeline(
        &pubchem,
        PatternBudget::new(3, 8, 12).unwrap(),
        scale.walks(),
        303,
    )
    .patterns();
    let cat_emol = run_pipeline(
        &emol,
        PatternBudget::new(3, 8, 6).unwrap(),
        scale.walks(),
        304,
    )
    .patterns();

    let q_pub = random_queries(&pubchem, scale.queries(80), (4, 25), 305);
    let q_emol = random_queries(&emol, scale.queries(80), (4, 25), 306);

    let rows = vec![
        compare(
            "PubChem",
            &pubchem,
            &pubchem_gui_patterns(),
            &cat_pub,
            &q_pub,
        ),
        compare("eMol", &emol, &emol_gui_patterns(), &cat_emol, &q_emol),
    ];
    into_report(rows)
}

fn into_report(rows: Vec<GuiComparison>) -> Report {
    let mut table = Table::new(&[
        "gui", "cog(gui)", "cog(CAT)", "div(gui)", "div(CAT)", "MP(gui)", "MP(CAT)", "max_muG",
        "avg_muG",
    ]);
    let mut notes = Vec::new();
    for r in &rows {
        table.row(vec![
            r.gui.to_string(),
            f2(r.cog.0),
            f2(r.cog.1),
            f2(r.div.0),
            f2(r.div.1),
            pct(r.mp.0),
            pct(r.mp.1),
            f2(r.mu_g.0),
            f2(r.mu_g.1),
        ]);
        notes.push(format!(
            "{}: CATAPULT cog {:.2} vs GUI {:.2} (paper: CATAPULT lower); avg muG {:.2} (paper: positive)",
            r.gui, r.cog.1, r.cog.0, r.mu_g.1
        ));
    }
    Report {
        id: "exp3",
        title: "Comparison with commercial GUIs (§6.2 Exp 3)".into(),
        tables: vec![("gui-comparison".into(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult_datasets::aids_profile;

    #[test]
    fn smoke_produces_two_rows() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 2);
    }

    #[test]
    fn compare_detects_useless_panels() {
        let db = generate(&aids_profile(), 20, 1).graphs;
        let queries = random_queries(&db, 10, (4, 10), 2);
        // An empty catapult panel: MP(CAT) must be 100%.
        let c = compare("test", &db, &pubchem_gui_patterns(), &[], &queries);
        assert_eq!(c.mp.1, 100.0);
    }
}
