//! Wall-clock comparison of the parallel fan-outs: one worker vs auto.
//!
//! Times the two heaviest parallelized stages — frequent-subtree mining
//! (support counting fans over the transaction list) and fine clustering
//! (MCS/MCCS similarity fans over cluster members) — once with the pool
//! pinned to a single worker and once auto-sized. Results land in
//! `BENCH_parallel.json`.
//!
//! The speedup column is only meaningful on a multi-core host: with
//! `host_threads: 1` the auto pool degenerates to the sequential path
//! and the ratio hovers around 1.0 (scheduling overhead included) — the
//! JSON records the host's parallelism precisely so readers can tell
//! which regime a number came from.

use catapult_cluster::fine::{fine_cluster_audited, FineConfig};
use catapult_datasets::{aids_profile, generate};
use catapult_graph::Graph;
use catapult_mining::subtree::mine_subtrees;
use catapult_mining::SubtreeMinerConfig;
use catapult_obs::{Recorder, Stopwatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// One workload measured at both pool sizes.
#[derive(Clone, Debug)]
pub struct ParallelBench {
    /// Workload name ("mining" or "fine-clustering").
    pub workload: &'static str,
    /// Median-of-N wall clock with the pool pinned to one worker.
    pub sequential: Duration,
    /// Median-of-N wall clock with the pool auto-sized.
    pub auto: Duration,
    /// Worker count the auto pool resolved to.
    pub auto_threads: usize,
}

impl ParallelBench {
    /// `sequential / auto`: >1 means the parallel run was faster.
    pub fn speedup(&self) -> f64 {
        let auto = self.auto.as_secs_f64();
        if auto == 0.0 {
            return 1.0;
        }
        self.sequential.as_secs_f64() / auto
    }
}

/// Warmup iterations discarded before timing starts. The first run under
/// a freshly resized pool pays thread spawn-up, allocator growth and cold
/// caches; folding it into the measurement is where the noisy sub-1.0
/// "speedups" in early `BENCH_parallel.json` artifacts came from. One
/// discarded run absorbs all three without doubling the harness cost.
const WARMUP_REPS: usize = 1;

/// Median-of-`reps` wall clock of `f` under a pool of `threads` workers,
/// after [`WARMUP_REPS`] untimed runs.
///
/// Median rather than min or mean: the min rewards a single lucky
/// scheduling roll (and biases the sequential/auto ratio whichever way
/// got luckier), the mean is dragged by one preempted outlier; the
/// median is stable under both.
fn time_with_threads(threads: usize, reps: usize, mut f: impl FnMut()) -> Duration {
    rayon::set_threads(threads);
    for _ in 0..WARMUP_REPS {
        f();
    }
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Stopwatch::start();
            f();
            start.elapsed()
        })
        .collect();
    rayon::set_threads(0);
    samples.sort();
    median_of_sorted(&samples)
}

/// Median of a sorted, non-empty sample list (even length → mean of the
/// middle pair).
fn median_of_sorted(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    debug_assert!(n > 0, "median of empty sample set");
    let mid = n / 2;
    if n % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// Run both workloads; `scale` multiplies the repository size (1 = the
/// default 60-molecule AIDS-profile repository).
pub fn run(scale: usize, reps: usize) -> Vec<ParallelBench> {
    run_recorded(scale, reps, &Recorder::disabled())
}

/// [`run`] under an observability recorder: each workload's timed region
/// becomes a span (`bench.mining` / `bench.fine_clustering`), so a
/// `--metrics-out` manifest from the bench driver carries the same span
/// tree a CLI run does.
pub fn run_recorded(scale: usize, reps: usize, recorder: &Recorder) -> Vec<ParallelBench> {
    let _span = recorder.span("bench_parallel");
    let db = generate(&aids_profile(), 60 * scale.max(1), 3);
    let auto_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let miner = SubtreeMinerConfig {
        min_support: 0.1,
        max_edges: 4,
        ..Default::default()
    };
    let mine = |graphs: &[Graph]| {
        let out = mine_subtrees(graphs, &miner, &catapult_graph::SearchBudget::unbounded());
        assert!(!out.subtrees.is_empty(), "mining workload degenerated");
    };
    let mining = {
        let _span = recorder.span("bench.mining");
        ParallelBench {
            workload: "mining",
            sequential: time_with_threads(1, reps, || mine(&db.graphs)),
            auto: time_with_threads(0, reps, || mine(&db.graphs)),
            auto_threads,
        }
    };

    let fine_cfg = FineConfig {
        max_cluster_size: 5,
        ..Default::default()
    };
    let all: Vec<u32> = (0..db.graphs.len() as u32).collect();
    let cluster = || {
        let mut rng = StdRng::seed_from_u64(9);
        let out = fine_cluster_audited(&db.graphs, vec![all.clone()], &fine_cfg, &mut rng);
        assert!(out.clusters.len() > 1, "clustering workload degenerated");
    };
    let clustering = {
        let _span = recorder.span("bench.fine_clustering");
        ParallelBench {
            workload: "fine-clustering",
            sequential: time_with_threads(1, reps, cluster),
            auto: time_with_threads(0, reps, cluster),
            auto_threads,
        }
    };

    vec![mining, clustering]
}

/// Hand-rolled JSON (the workspace has no serde): stable key order, one
/// entry per workload.
pub fn to_json(benches: &[ParallelBench]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"schema_version\": {},\n",
        catapult_obs::SCHEMA_VERSION
    ));
    s.push_str(&crate::host_fingerprint_json());
    s.push_str("  \"entries\": [\n");
    for (i, b) in benches.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"secs_sequential\": {:.6}, \"secs_auto\": {:.6}, \"auto_threads\": {}, \"speedup\": {:.3}}}{}\n",
            b.workload,
            b.sequential.as_secs_f64(),
            b.auto.as_secs_f64(),
            b.auto_threads,
            b.speedup(),
            if i + 1 == benches.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_serializes() {
        // Tiny scale: correctness of the harness, not the numbers.
        let benches = run(1, 1);
        assert_eq!(benches.len(), 2);
        let json = to_json(&benches);
        assert_eq!(
            catapult_obs::schema_version_of(&json),
            Some(catapult_obs::SCHEMA_VERSION),
            "bench JSON must be schema-versioned: {json}"
        );
        assert!(json.contains("\"host_threads\""));
        assert!(json.contains("\"mining\""));
        assert!(json.contains("\"fine-clustering\""));
        assert!(json.contains("\"speedup\""));
        // The pool must be back to auto after timing.
        assert!(rayon::current_threads() >= 1);
    }

    #[test]
    fn median_handles_odd_even_and_outliers() {
        let ms = Duration::from_millis;
        assert_eq!(median_of_sorted(&[ms(5)]), ms(5));
        assert_eq!(median_of_sorted(&[ms(1), ms(3), ms(500)]), ms(3));
        assert_eq!(median_of_sorted(&[ms(2), ms(4)]), ms(3));
        assert_eq!(
            median_of_sorted(&[ms(1), ms(2), ms(3), ms(900)]),
            ms(2) + ms(1) / 2,
            "one preempted outlier must not drag the result"
        );
    }
}
