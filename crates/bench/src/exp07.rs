//! Exp 7 — Effect of |P| (Fig. 13, Appendix C).
//!
//! Varies the number of canned patterns |P| ∈ {5, 10, 20, 30, 40} over
//! four repositories, reporting max/avg μ, MP, and PGT. Paper shape: μ is
//! largely insensitive to |P|, MP halves from |P| = 10 to 40, PGT grows
//! with |P|.

use crate::common::harness_clustering;
use crate::report::{pct, secs, Report, Table};
use crate::scale::Scale;
use catapult_cluster::cluster_graphs;
use catapult_core::{find_canned_patterns, PatternBudget, SelectionConfig};
use catapult_csg::{build_csgs, Csg};
use catapult_datasets::{aids_profile, emol_profile, generate, pubchem_profile, random_queries};
use catapult_eval::WorkloadEvaluation;
use catapult_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One (dataset, |P|) measurement.
#[derive(Clone, Debug)]
pub struct PatternCountRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// γ.
    pub p: usize,
    /// Max μ (%).
    pub max_mu: f64,
    /// Mean μ (%).
    pub avg_mu: f64,
    /// MP (%).
    pub mp: f64,
    /// Pattern generation time.
    pub pgt: std::time::Duration,
}

/// Cluster a repository once; reused across all budget sweeps.
pub fn prepare(db: &[Graph], seed: u64) -> Vec<Csg> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clustering = cluster_graphs(db, &harness_clustering(20), &mut rng);
    build_csgs(db, &clustering.clusters)
}

/// Sweep |P| for one prepared dataset.
pub fn sweep(
    dataset: &'static str,
    db: &[Graph],
    csgs: &[Csg],
    queries: &[Graph],
    ps: &[usize],
    walks: usize,
    seed: u64,
) -> Vec<PatternCountRow> {
    ps.iter()
        .map(|&p| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sel = find_canned_patterns(
                db,
                csgs,
                &SelectionConfig {
                    budget: PatternBudget::new(3, 12, p).unwrap(),
                    walks,
                    ..Default::default()
                },
                &mut rng,
            );
            let ev = WorkloadEvaluation::evaluate(&sel.patterns(), queries);
            PatternCountRow {
                dataset,
                p,
                max_mu: ev.max_reduction() * 100.0,
                avg_mu: ev.mean_reduction() * 100.0,
                mp: ev.missed_percentage(),
                pgt: sel.elapsed,
            }
        })
        .collect()
}

/// Run Exp 7.
pub fn run(scale: Scale) -> Report {
    let datasets: Vec<(&'static str, Vec<Graph>)> = vec![
        (
            "aids-small",
            generate(&aids_profile(), scale.size(80), 701).graphs,
        ),
        (
            "aids-large",
            generate(&aids_profile(), scale.size(200), 702).graphs,
        ),
        (
            "pubchem",
            generate(&pubchem_profile(), scale.size(120), 703).graphs,
        ),
        (
            "emol",
            generate(&emol_profile(), scale.size(120), 704).graphs,
        ),
    ];
    let ps = [5usize, 10, 20, 30, 40];
    let mut rows = Vec::new();
    for (i, (name, db)) in datasets.iter().enumerate() {
        let csgs = prepare(db, 710 + i as u64);
        let queries = random_queries(db, scale.queries(60), (4, 25), 720 + i as u64);
        rows.extend(sweep(
            name,
            db,
            &csgs,
            &queries,
            &ps,
            scale.walks(),
            730 + i as u64,
        ));
    }
    into_report(rows)
}

fn into_report(rows: Vec<PatternCountRow>) -> Report {
    let mut table = Table::new(&["dataset", "|P|", "max_mu", "avg_mu", "MP", "PGT"]);
    for r in &rows {
        table.row(vec![
            r.dataset.to_string(),
            r.p.to_string(),
            pct(r.max_mu),
            pct(r.avg_mu),
            pct(r.mp),
            secs(r.pgt),
        ]);
    }
    let mut notes = Vec::new();
    for ds in ["aids-small", "aids-large", "pubchem", "emol"] {
        let series: Vec<&PatternCountRow> = rows.iter().filter(|r| r.dataset == ds).collect();
        if series.len() >= 2 {
            let first = series.first().unwrap();
            let last = series.last().unwrap();
            notes.push(format!(
                "{ds}: MP {} (|P|={}) → {} (|P|={}) — paper: downward trend; PGT {} → {}",
                pct(first.mp),
                first.p,
                pct(last.mp),
                last.p,
                secs(first.pgt),
                secs(last.pgt),
            ));
        }
    }
    Report {
        id: "exp7",
        title: "Effect of |P| (Fig. 13)".into(),
        tables: vec![("pattern-count".into(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_grid() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 20); // 4 datasets × 5 budgets
    }

    #[test]
    fn mp_not_increasing_in_p_on_average() {
        let db = generate(&aids_profile(), 40, 1).graphs;
        let csgs = prepare(&db, 2);
        let queries = random_queries(&db, 20, (4, 15), 3);
        let rows = sweep("t", &db, &csgs, &queries, &[5, 30], 20, 4);
        assert!(rows[1].mp <= rows[0].mp + 25.0, "MP should tend downward");
    }
}
