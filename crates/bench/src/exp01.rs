//! Exp 1 — Small graph clustering (Fig. 7).
//!
//! Compares the five clustering strategies (CC, mccsFC, mcsFC, mccsH,
//! mcsH) on two AIDS-like repositories, reporting clustering time and CSG
//! compactness ξ_t for t ∈ {0.4, 0.5, 0.6}. The paper's finding: CC is
//! fastest but least compact; MCCS-based fine clustering is most compact
//! but slow; the hybrid (mccsH) reaches near-best compactness at a
//! reasonable time.

use crate::common::harness_clustering;
use crate::report::{f3, secs, Report, Table};
use crate::scale::Scale;
use catapult_cluster::{cluster_graphs, SimilarityKind, Strategy};
use catapult_csg::build_csgs;
use catapult_datasets::{aids_profile, generate};
use catapult_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measured strategy run.
#[derive(Clone, Debug)]
pub struct StrategyRow {
    /// Dataset name ("aids10k"-like small / "aids40k"-like large).
    pub dataset: String,
    /// Strategy short name (CC, mccsFC, …).
    pub strategy: &'static str,
    /// Clustering wall time.
    pub time: std::time::Duration,
    /// Mean ξ_0.4 / ξ_0.5 / ξ_0.6 over CSGs.
    pub xi: [f64; 3],
    /// Number of clusters produced.
    pub clusters: usize,
}

/// Mean CSG compactness at thresholds {0.4, 0.5, 0.6}.
pub fn mean_compactness(db: &[Graph], clusters: &[Vec<u32>]) -> [f64; 3] {
    let csgs = build_csgs(db, clusters);
    if csgs.is_empty() {
        return [0.0; 3];
    }
    let mut out = [0.0f64; 3];
    for (i, t) in [0.4, 0.5, 0.6].into_iter().enumerate() {
        out[i] = csgs.iter().map(|c| c.compactness(t)).sum::<f64>() / csgs.len() as f64;
    }
    out
}

/// Run Exp 1.
pub fn run(scale: Scale) -> Report {
    let datasets = [
        (
            "aids-small",
            generate(&aids_profile(), scale.size(80), 101).graphs,
        ),
        (
            "aids-large",
            generate(&aids_profile(), scale.size(240), 102).graphs,
        ),
    ];
    let strategies = [
        Strategy::CoarseOnly,
        Strategy::FineOnly(SimilarityKind::Mccs),
        Strategy::FineOnly(SimilarityKind::Mcs),
        Strategy::Hybrid(SimilarityKind::Mccs),
        Strategy::Hybrid(SimilarityKind::Mcs),
    ];
    let mut rows = Vec::new();
    for (name, db) in &datasets {
        for strategy in strategies {
            let cfg = catapult_cluster::ClusteringConfig {
                strategy,
                ..harness_clustering(20)
            };
            let mut rng = StdRng::seed_from_u64(7);
            let clustering = cluster_graphs(db, &cfg, &mut rng);
            let xi = mean_compactness(db, &clustering.clusters);
            rows.push(StrategyRow {
                dataset: name.to_string(),
                strategy: strategy.paper_name(),
                time: clustering.elapsed,
                xi,
                clusters: clustering.clusters.len(),
            });
        }
    }
    into_report(rows)
}

fn into_report(rows: Vec<StrategyRow>) -> Report {
    let mut table = Table::new(&[
        "dataset", "strategy", "clusters", "time", "xi_0.4", "xi_0.5", "xi_0.6",
    ]);
    for r in &rows {
        table.row(vec![
            r.dataset.clone(),
            r.strategy.to_string(),
            r.clusters.to_string(),
            secs(r.time),
            f3(r.xi[0]),
            f3(r.xi[1]),
            f3(r.xi[2]),
        ]);
    }
    // Shape checks vs the paper.
    let mut notes = Vec::new();
    let get = |ds: &str, s: &str| rows.iter().find(|r| r.dataset == ds && r.strategy == s);
    for ds in ["aids-small", "aids-large"] {
        if let (Some(cc), Some(h)) = (get(ds, "CC"), get(ds, "mccsH")) {
            notes.push(format!(
                "{ds}: CC time {} vs mccsH {}; xi_0.5 CC {:.3} vs mccsH {:.3} (paper: CC fastest, hybrid most compact)",
                secs(cc.time),
                secs(h.time),
                cc.xi[1],
                h.xi[1]
            ));
        }
    }
    Report {
        id: "exp1",
        title: "Small graph clustering strategies (Fig. 7)".into(),
        tables: vec![("clustering".into(), table)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_has_all_cells() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 10); // 2 datasets × 5 strategies
    }

    #[test]
    fn compactness_values_are_probabilities() {
        let db = generate(&aids_profile(), 30, 5).graphs;
        let clusters = vec![(0..15).collect::<Vec<u32>>(), (15..30).collect()];
        let xi = mean_compactness(&db, &clusters);
        for x in xi {
            assert!((0.0..=1.0).contains(&x));
        }
        // ξ is monotone non-increasing in t.
        assert!(xi[0] >= xi[1] && xi[1] >= xi[2]);
    }
}
