//! Exp 8 — Effect of pattern size bounds (Fig. 14 + 15 + 16, Appendix C).
//!
//! Varies ηmin ∈ {3,5,7,9} at ηmax = 12 (Fig. 14) and ηmax ∈ {5,7,9,12}
//! at ηmin = 3 (Fig. 15), reporting max/avg μ, MP, PGT; and tracks div/cog
//! across the sweeps (Fig. 16). Paper shape: raising ηmin sharply raises
//! MP (large patterns rarely embed in queries); ηmax matters far less;
//! div grows with ηmin, cog stays flat in [1.59, 2.36].

use crate::exp07::prepare;
use crate::report::{f2, pct, secs, Report, Table};
use crate::scale::Scale;
use catapult_core::{find_canned_patterns, PatternBudget, SelectionConfig};
use catapult_csg::Csg;
use catapult_datasets::{aids_profile, generate, random_queries};
use catapult_eval::measures::{mean_cog, mean_diversity};
use catapult_eval::WorkloadEvaluation;
use catapult_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One (sweep, bound-value) measurement.
#[derive(Clone, Debug)]
pub struct SizeBoundRow {
    /// Which bound was varied ("eta_min" / "eta_max").
    pub sweep: &'static str,
    /// The bound's value.
    pub value: usize,
    /// Max μ (%).
    pub max_mu: f64,
    /// Mean μ (%).
    pub avg_mu: f64,
    /// MP (%).
    pub mp: f64,
    /// PGT.
    pub pgt: std::time::Duration,
    /// Mean pattern-set diversity (Fig. 16).
    pub div: f64,
    /// Mean cognitive load (Fig. 16).
    pub cog: f64,
}

// A measurement row is defined by the full sweep context; bundling the
// arguments into a struct would only rename the problem.
#[allow(clippy::too_many_arguments)]
fn measure(
    sweep: &'static str,
    value: usize,
    budget: PatternBudget,
    db: &[Graph],
    csgs: &[Csg],
    queries: &[Graph],
    walks: usize,
    seed: u64,
) -> SizeBoundRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let sel = find_canned_patterns(
        db,
        csgs,
        &SelectionConfig {
            budget,
            walks,
            ..Default::default()
        },
        &mut rng,
    );
    let pats = sel.patterns();
    let ev = WorkloadEvaluation::evaluate(&pats, queries);
    SizeBoundRow {
        sweep,
        value,
        max_mu: ev.max_reduction() * 100.0,
        avg_mu: ev.mean_reduction() * 100.0,
        mp: ev.missed_percentage(),
        pgt: sel.elapsed,
        div: mean_diversity(&pats),
        cog: mean_cog(&pats),
    }
}

/// Run Exp 8.
pub fn run(scale: Scale) -> Report {
    let db = generate(&aids_profile(), scale.size(120), 801).graphs;
    let csgs = prepare(&db, 802);
    let queries = random_queries(&db, scale.queries(60), (4, 25), 803);
    let gamma = 30; // the paper's |P| (Definition 3.1 default, §6.1)
    let mut rows = Vec::new();
    for eta_min in [3usize, 5, 7, 9] {
        let budget = PatternBudget::new(eta_min, 12, gamma).unwrap();
        rows.push(measure(
            "eta_min",
            eta_min,
            budget,
            &db,
            &csgs,
            &queries,
            scale.walks(),
            810,
        ));
    }
    for eta_max in [5usize, 7, 9, 12] {
        let budget = PatternBudget::new(3, eta_max, gamma).unwrap();
        rows.push(measure(
            "eta_max",
            eta_max,
            budget,
            &db,
            &csgs,
            &queries,
            scale.walks(),
            811,
        ));
    }
    into_report(rows)
}

fn into_report(rows: Vec<SizeBoundRow>) -> Report {
    let mut fig1415 = Table::new(&["sweep", "value", "max_mu", "avg_mu", "MP", "PGT"]);
    let mut fig16 = Table::new(&["sweep", "value", "div", "cog"]);
    for r in &rows {
        fig1415.row(vec![
            r.sweep.to_string(),
            r.value.to_string(),
            pct(r.max_mu),
            pct(r.avg_mu),
            pct(r.mp),
            secs(r.pgt),
        ]);
        fig16.row(vec![
            r.sweep.to_string(),
            r.value.to_string(),
            f2(r.div),
            f2(r.cog),
        ]);
    }
    let mins: Vec<&SizeBoundRow> = rows.iter().filter(|r| r.sweep == "eta_min").collect();
    let maxs: Vec<&SizeBoundRow> = rows.iter().filter(|r| r.sweep == "eta_max").collect();
    let mut notes = Vec::new();
    if let (Some(lo), Some(hi)) = (mins.first(), mins.last()) {
        notes.push(format!(
            "eta_min {} → {}: MP {} → {} (paper: MP rises steeply with eta_min); div {:.2} → {:.2} (paper: div rises)",
            lo.value, hi.value, pct(lo.mp), pct(hi.mp), lo.div, hi.div
        ));
    }
    if let (Some(lo), Some(hi)) = (maxs.first(), maxs.last()) {
        notes.push(format!(
            "eta_max {} → {}: MP {} → {} (paper: small effect, |MP range| ≤ ~4 points)",
            lo.value,
            hi.value,
            pct(lo.mp),
            pct(hi.mp)
        ));
    }
    Report {
        id: "exp8",
        title: "Effect of pattern size bounds (Fig. 14 + 15 + 16)".into(),
        tables: vec![("fig14-15".into(), fig1415), ("fig16".into(), fig16)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_both_sweeps() {
        let r = run(Scale::Smoke);
        assert_eq!(r.tables[0].1.len(), 8);
        assert_eq!(r.tables[1].1.len(), 8);
    }
}
