//! Criterion bench for Exp 9 / Fig. 17: frequent-subgraph baseline mining
//! and selection (`experiments exp9` prints the figure's series).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_bench::exp09::baseline_patterns;
use catapult_datasets::{aids_profile, generate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_baseline(c: &mut Criterion) {
    let db = generate(&aids_profile(), 40, 22).graphs;
    let mut group = c.benchmark_group("fig17_frequent_baseline");
    group.sample_size(10);
    for support in [0.12f64, 0.2, 0.3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("support_{support}")),
            &support,
            |b, &s| b.iter(|| baseline_patterns(&db, s, 12)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
