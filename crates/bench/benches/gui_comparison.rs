//! Criterion bench for Exp 3 (§6.2): labeled CATAPULT formulation vs the
//! unlabeled-GUI relabelling model (`experiments exp3` prints the rows).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_datasets::{generate, pubchem_profile, random_queries};
use catapult_eval::gui::pubchem_gui_patterns;
use catapult_eval::steps::DEFAULT_EMBEDDING_CAP;
use catapult_eval::{formulate, formulate_unlabeled};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_formulation_models(c: &mut Criterion) {
    let db = generate(&pubchem_profile(), 30, 5).graphs;
    let queries = random_queries(&db, 20, (6, 20), 6);
    let gui = pubchem_gui_patterns();
    // A labeled panel of the same size: use GUI shapes with db labels via
    // real query subgraphs.
    let labeled: Vec<_> = random_queries(&db, 12, (3, 8), 7);

    let mut group = c.benchmark_group("exp3_gui_comparison");
    group.sample_size(10);
    group.bench_function("labeled_panel", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| formulate(q, &labeled, DEFAULT_EMBEDDING_CAP).steps)
                .sum::<usize>()
        })
    });
    group.bench_function("unlabeled_gui_panel", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| formulate_unlabeled(q, &gui, DEFAULT_EMBEDDING_CAP).steps)
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_formulation_models);
criterion_main!(benches);
