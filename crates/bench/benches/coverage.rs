//! Criterion bench for Exp 5 / Fig. 11: scov/lcov computation for pattern
//! sets vs top-|P| frequent edges (`experiments exp5` prints the series).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_datasets::{aids_profile, generate, random_queries};
use catapult_eval::measures::{label_coverage, subgraph_coverage};
use catapult_mining::EdgeLabelStats;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_coverage(c: &mut Criterion) {
    let db = generate(&aids_profile(), 60, 12).graphs;
    let patterns = random_queries(&db, 10, (3, 10), 13);
    let stats = EdgeLabelStats::from_graphs(&db);
    let edges = stats.top_k_as_patterns(10);
    let mut group = c.benchmark_group("fig11_coverage");
    group.sample_size(20);
    group.bench_function("scov_patterns", |b| {
        b.iter(|| subgraph_coverage(&patterns, &db))
    });
    group.bench_function("scov_top_edges", |b| {
        b.iter(|| subgraph_coverage(&edges, &db))
    });
    group.bench_function("lcov_patterns", |b| {
        b.iter(|| label_coverage(&patterns, &db))
    });
    group.finish();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
