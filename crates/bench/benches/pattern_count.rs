//! Criterion bench for Exp 7 / Fig. 13: selection cost (PGT) as |P| grows
//! (`experiments exp7` prints the figure's series).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_bench::exp07::prepare;
use catapult_core::{find_canned_patterns, PatternBudget, SelectionConfig};
use catapult_datasets::{aids_profile, generate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pattern_count(c: &mut Criterion) {
    let db = generate(&aids_profile(), 40, 16).graphs;
    let csgs = prepare(&db, 17);
    let mut group = c.benchmark_group("fig13_pattern_count");
    group.sample_size(10);
    for gamma in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &gamma| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(18);
                find_canned_patterns(
                    &db,
                    &csgs,
                    &SelectionConfig {
                        budget: PatternBudget::new(3, 8, gamma).unwrap(),
                        walks: 20,
                        ..Default::default()
                    },
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pattern_count);
criterion_main!(benches);
