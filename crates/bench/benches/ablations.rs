//! Criterion bench for the ablation studies: the selection kernel under
//! each score variant (`experiments ablations` prints the full tables).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_bench::exp07::prepare;
use catapult_core::{find_canned_patterns, PatternBudget, ScoreVariant, SelectionConfig};
use catapult_datasets::{aids_profile, generate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_score_variants(c: &mut Criterion) {
    let db = generate(&aids_profile(), 40, 24).graphs;
    let csgs = prepare(&db, 25);
    let mut group = c.benchmark_group("ablation_score_variants");
    group.sample_size(10);
    for variant in [
        ScoreVariant::Full,
        ScoreVariant::NoDiversity,
        ScoreVariant::NoCognitiveLoad,
        ScoreVariant::Additive,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(26);
                    find_canned_patterns(
                        &db,
                        &csgs,
                        &SelectionConfig {
                            budget: PatternBudget::new(3, 6, 6).unwrap(),
                            walks: 15,
                            variant,
                            ..Default::default()
                        },
                        &mut rng,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_score_variants);
criterion_main!(benches);
