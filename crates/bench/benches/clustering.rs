//! Criterion bench for Exp 1 / Fig. 7: the five small-graph clustering
//! strategies. The `experiments exp1` binary prints the figure's rows;
//! this bench times the underlying kernels.

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_bench::common::harness_clustering;
use catapult_cluster::{cluster_graphs, ClusteringConfig, SimilarityKind, Strategy};
use catapult_datasets::{aids_profile, generate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_strategies(c: &mut Criterion) {
    let db = generate(&aids_profile(), 40, 1).graphs;
    let mut group = c.benchmark_group("fig7_clustering");
    group.sample_size(10);
    for strategy in [
        Strategy::CoarseOnly,
        Strategy::FineOnly(SimilarityKind::Mccs),
        Strategy::FineOnly(SimilarityKind::Mcs),
        Strategy::Hybrid(SimilarityKind::Mccs),
        Strategy::Hybrid(SimilarityKind::Mcs),
    ] {
        let cfg = ClusteringConfig {
            strategy,
            ..harness_clustering(10)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.paper_name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    cluster_graphs(&db, cfg, &mut rng)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
