//! Criterion bench for Exp 8 / Fig. 14–16: selection cost across the
//! ηmin / ηmax sweeps (`experiments exp8` prints the figures' series).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_bench::exp07::prepare;
use catapult_core::{find_canned_patterns, PatternBudget, SelectionConfig};
use catapult_datasets::{aids_profile, generate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pattern_size(c: &mut Criterion) {
    let db = generate(&aids_profile(), 40, 19).graphs;
    let csgs = prepare(&db, 20);
    let mut group = c.benchmark_group("fig14_16_pattern_size");
    group.sample_size(10);
    for (eta_min, eta_max) in [(3usize, 12usize), (5, 12), (9, 12), (3, 5)] {
        let name = format!("eta[{eta_min},{eta_max}]");
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(eta_min, eta_max),
            |b, &(lo, hi)| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(21);
                    find_canned_patterns(
                        &db,
                        &csgs,
                        &SelectionConfig {
                            budget: PatternBudget::new(lo, hi, 8).unwrap(),
                            walks: 20,
                            ..Default::default()
                        },
                        &mut rng,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pattern_size);
criterion_main!(benches);
