//! Criterion bench for Exp 4 / Fig. 10: the simulated QFT model
//! (`experiments exp4` prints Table 1 / Fig. 10 rows).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_datasets::{generate, pubchem_profile, random_queries};
use catapult_eval::formulate;
use catapult_eval::steps::DEFAULT_EMBEDDING_CAP;
use catapult_eval::userstudy::run_cell;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_user_study(c: &mut Criterion) {
    let db = generate(&pubchem_profile(), 30, 8).graphs;
    let panel = random_queries(&db, 12, (3, 8), 9);
    let query = random_queries(&db, 1, (20, 30), 10).remove(0);
    let f = formulate(&query, &panel, DEFAULT_EMBEDDING_CAP);
    let mut group = c.benchmark_group("fig10_user_study");
    group.sample_size(20);
    group.bench_function("simulate_25_participants", |b| {
        b.iter(|| run_cell(&f, &panel, 0, 25, 11))
    });
    group.bench_function("formulate_query", |b| {
        b.iter(|| formulate(&query, &panel, DEFAULT_EMBEDDING_CAP))
    });
    group.finish();
}

criterion_group!(benches, bench_user_study);
criterion_main!(benches);
