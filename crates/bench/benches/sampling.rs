//! Criterion bench for Exp 2 / Fig. 8–9: pipeline cost with sampling on
//! and off (`experiments exp2` prints the figures' rows).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_bench::common::harness_clustering;
use catapult_bench::exp02::harness_sampling;
use catapult_core::{run_catapult, CatapultConfig, PatternBudget};
use catapult_datasets::{aids_profile, generate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sampling(c: &mut Criterion) {
    let db = generate(&aids_profile(), 48, 3).graphs;
    let mut group = c.benchmark_group("fig8_9_sampling");
    group.sample_size(10);
    for sampled in [true, false] {
        let mut clustering = harness_clustering(10);
        if sampled {
            clustering.sampling = Some(harness_sampling(db.len()));
        }
        let cfg = CatapultConfig {
            clustering,
            budget: PatternBudget::new(3, 6, 6).unwrap(),
            walks: 20,
            seed: 4,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(if sampled { "sampled" } else { "no-sampling" }),
            &cfg,
            |b, cfg| b.iter(|| run_catapult(&db, cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
