//! Criterion bench for Exp 10 / Fig. 18: simulated ranking study +
//! Kendall τ (`experiments exp10` prints the figure's bars).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_eval::cogload::{correlate, exp10_stimuli};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_cogload(c: &mut Criterion) {
    let stimuli = exp10_stimuli();
    let mut group = c.benchmark_group("fig18_cognitive_load");
    group.sample_size(30);
    group.bench_function("correlate_15_participants", |b| {
        b.iter(|| correlate(&stimuli, 15, 23))
    });
    group.finish();
}

criterion_group!(benches, bench_cogload);
criterion_main!(benches);
