//! Criterion bench for Exp 6 / Fig. 12: pipeline cost as |D| grows
//! (`experiments exp6` prints the figure's series).

// Bench fixtures are fixed, known-valid configurations; fail fast.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult_bench::common::run_pipeline;
use catapult_core::PatternBudget;
use catapult_datasets::{generate, pubchem_profile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_scalability");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let db = generate(&pubchem_profile(), n, 14).graphs;
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| run_pipeline(db, PatternBudget::new(3, 6, 6).unwrap(), 20, 15))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
