//! # catapult
//!
//! A from-scratch Rust reproduction of **CATAPULT** (SIGMOD 2019):
//! *Data-driven Selection of Canned Patterns for Efficient Visual Graph
//! Query Formulation* by Huang, Chua, Bhowmick, Choi, and Zhou.
//!
//! Given a repository of small labeled graphs (e.g. chemical compounds)
//! and a pattern budget `b = (ηmin, ηmax, γ)`, CATAPULT automatically
//! selects the set of *canned patterns* a visual graph query interface
//! should expose — maximizing subgraph and label coverage and pattern
//! diversity while minimizing cognitive load.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — labeled graphs, VF2, MCS/MCCS, GED, canonical forms;
//! * [`mining`] — frequent subtree / subgraph / edge mining;
//! * [`cluster`] — coarse + fine small-graph clustering and sampling;
//! * [`ckpt`] — crash-safe stage checkpoints and resumable execution;
//! * [`csg`] — cluster summary (closure) graphs;
//! * [`core`] — the pattern-selection pipeline (Algorithms 1 & 4);
//! * [`datasets`] — synthetic molecule repositories and query workloads;
//! * [`eval`] — the §6 step model and evaluation measures.
//!
//! ## Quickstart
//!
//! ```
//! use catapult::prelude::*;
//!
//! // A small synthetic molecule repository.
//! let db = catapult::datasets::generate(&catapult::datasets::aids_profile(), 30, 7);
//! let cfg = CatapultConfig {
//!     budget: PatternBudget::new(3, 6, 6).unwrap(),
//!     walks: 20,
//!     ..Default::default()
//! };
//! let result = run_catapult(&db.graphs, &cfg);
//! assert!(!result.patterns().is_empty());
//! ```

// Lint policy: see [workspace.lints] in the root Cargo.toml.
// Unit tests are allowed the ergonomic panicking shortcuts the library
// itself forbids; the policy targets production code paths only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod cli;

pub use catapult_ckpt as ckpt;
pub use catapult_cluster as cluster;
pub use catapult_core as core;
pub use catapult_csg as csg;
pub use catapult_datasets as datasets;
pub use catapult_eval as eval;
pub use catapult_graph as graph;
pub use catapult_mining as mining;

/// One-stop imports for pipeline users.
pub mod prelude {
    pub use catapult_cluster::{ClusteringConfig, SamplingConfig, SimilarityKind, Strategy};
    pub use catapult_core::{
        run_catapult, CatapultConfig, CatapultResult, PatternBudget, SelectionConfig,
    };
    pub use catapult_eval::{formulate, formulate_unlabeled, step_total};
    pub use catapult_graph::{Graph, Label, LabelInterner, VertexId};
}
