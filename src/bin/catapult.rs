//! The `catapult` command-line tool. All logic lives in
//! [`catapult::cli`]; this wrapper forwards arguments and prints.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match catapult::cli::run(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
