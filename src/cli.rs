//! Command-line interface logic (see `src/bin/catapult.rs`).
//!
//! The subcommands wrap the library the way a downstream deployment would:
//!
//! ```text
//! catapult generate --profile aids --count 500 --seed 7 --out db.txt
//! catapult select   --db db.txt --gamma 30 --min-size 3 --max-size 12 --out patterns.txt
//! catapult evaluate --db db.txt --patterns patterns.txt --queries 200
//! catapult stats    --db db.txt
//! ```
//!
//! Graphs are read and written in the gSpan-style transaction format of
//! [`catapult_graph::fmt`]. All logic lives here (unit-testable); the
//! binary only forwards `std::env::args` and prints.

use catapult_core::{run_catapult, CatapultConfig, PatternBudget};
use catapult_datasets::{aids_profile, emol_profile, generate, pubchem_profile, random_queries};
use catapult_eval::WorkloadEvaluation;
use catapult_graph::fmt::{parse_graphs, write_graphs};
use catapult_graph::{Deadline, Graph, LabelInterner, SearchBudget};
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// CLI errors.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or malformed flags.
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Input file did not parse.
    Parse(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parsed `--key value` flags.
#[derive(Debug)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parse `--key value` pairs; rejects dangling flags.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --flag, got '{a}'")))?;
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{key} needs a value")))?;
            values.insert(key.to_string(), value.clone());
        }
        Ok(Flags { values })
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("--{key} is required")))
    }

    /// Optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Optional numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} got invalid value '{v}'"))),
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "usage: catapult <generate|select|evaluate|stats> [--flags]\n\
  generate --profile aids|pubchem|emol --count N [--seed S] [--out FILE]\n\
  select   --db FILE [--gamma N] [--min-size A] [--max-size B] [--walks W] [--seed S]\n\
           [--search-budget NODES] [--deadline-ms MS] [--threads N] [--out FILE]\n\
  evaluate --db FILE --patterns FILE [--queries N] [--min-edges A] [--max-edges B] [--seed S]\n\
           [--threads N]\n\
  stats    --db FILE\n\
common:\n\
  --threads N   worker threads for the parallel fan-outs: 0 = auto\n\
                (all cores), 1 = exact sequential legacy behavior\n\
                (default: CATAPULT_THREADS env var, else auto)";

fn load_db(path: &str, interner: &mut LabelInterner) -> Result<Vec<Graph>, CliError> {
    let text = std::fs::read_to_string(path)?;
    parse_graphs(&text, interner).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

fn emit(out: Option<&str>, content: &str) -> Result<String, CliError> {
    match out {
        Some(path) => {
            std::fs::write(path, content)?;
            Ok(format!("wrote {path}"))
        }
        None => Ok(content.to_string()),
    }
}

/// `generate`: write a synthetic repository.
pub fn cmd_generate(flags: &Flags) -> Result<String, CliError> {
    let profile = match flags.require("profile")? {
        "aids" => aids_profile(),
        "pubchem" => pubchem_profile(),
        "emol" => emol_profile(),
        other => return Err(CliError::Usage(format!("unknown profile '{other}'"))),
    };
    let count: usize = flags.num("count", 100)?;
    let seed: u64 = flags.num("seed", 42)?;
    let db = generate(&profile, count, seed);
    let text = write_graphs(&db.graphs, &db.interner);
    emit(flags.get("out"), &text)
}

/// `select`: run the pipeline and write the canned patterns.
pub fn cmd_select(flags: &Flags) -> Result<String, CliError> {
    let mut interner = LabelInterner::new();
    let db = load_db(flags.require("db")?, &mut interner)?;
    let gamma: usize = flags.num("gamma", 30)?;
    let min_size: usize = flags.num("min-size", 3)?;
    let max_size: usize = flags.num("max-size", 12)?;
    let budget = PatternBudget::new(min_size, max_size, gamma)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    // Execution budget: `--search-budget` caps the nodes each NP-hard
    // kernel may expand; `--deadline-ms` bounds the whole run's wall
    // clock. Either alone is fine; unset means per-stage defaults.
    let mut search = match flags.num::<u64>("search-budget", u64::MAX)? {
        u64::MAX => SearchBudget::unbounded(),
        cap => SearchBudget::nodes(cap),
    };
    if let Some(ms) = flags.get("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| CliError::Usage(format!("--deadline-ms got invalid value '{ms}'")))?;
        search = search.with_deadline(Deadline::from_now(Duration::from_millis(ms)));
    }
    let cfg = CatapultConfig {
        budget,
        walks: flags.num("walks", 100)?,
        seed: flags.num("seed", 0xCA7A)?,
        search,
        ..Default::default()
    };
    let result = run_catapult(&db, &cfg);
    let patterns = result.patterns();
    let text = write_graphs(&patterns, &interner);
    let report = result.report();
    let summary = format!(
        "% {} patterns selected from {} graphs (clustering {:.2}s, PGT {:.2}s)\n% search: {}\n",
        patterns.len(),
        db.len(),
        result.clustering_time().as_secs_f64(),
        result.pattern_generation_time().as_secs_f64(),
        report.summary().replace('\n', "\n% "),
    );
    emit(flags.get("out"), &format!("{summary}{text}"))
}

/// `evaluate`: workload metrics of a pattern file against a repository.
pub fn cmd_evaluate(flags: &Flags) -> Result<String, CliError> {
    let mut interner = LabelInterner::new();
    let db = load_db(flags.require("db")?, &mut interner)?;
    // Same interner: label names shared between the two files.
    let patterns = load_db(flags.require("patterns")?, &mut interner)?;
    let n: usize = flags.num("queries", 200)?;
    let lo: usize = flags.num("min-edges", 4)?;
    let hi: usize = flags.num("max-edges", 25)?;
    let seed: u64 = flags.num("seed", 7)?;
    let queries = random_queries(&db, n, (lo, hi), seed);
    let ev = WorkloadEvaluation::evaluate(&patterns, &queries);
    Ok(format!(
        "queries: {}\nmean step reduction: {:.1}%\nmax step reduction: {:.1}%\nmissed percentage: {:.1}%\nscov: {:.3}\nlcov: {:.3}\nmean cog: {:.2}\nmean div: {:.2}",
        queries.len(),
        ev.mean_reduction() * 100.0,
        ev.max_reduction() * 100.0,
        ev.missed_percentage(),
        catapult_eval::measures::subgraph_coverage(&patterns, &db),
        catapult_eval::measures::label_coverage(&patterns, &db),
        catapult_eval::measures::mean_cog(&patterns),
        catapult_eval::measures::mean_diversity(&patterns),
    ))
}

/// `stats`: repository summary.
pub fn cmd_stats(flags: &Flags) -> Result<String, CliError> {
    let mut interner = LabelInterner::new();
    let db = load_db(flags.require("db")?, &mut interner)?;
    if db.is_empty() {
        return Ok("empty repository".into());
    }
    let edges: Vec<usize> = db.iter().map(Graph::edge_count).collect();
    let vertices: Vec<usize> = db.iter().map(Graph::vertex_count).collect();
    let stats = catapult_mining::EdgeLabelStats::from_graphs(&db);
    let mut label_counts: HashMap<catapult_graph::Label, usize> = HashMap::new();
    for g in &db {
        for &l in g.labels() {
            *label_counts.entry(l).or_insert(0) += 1;
        }
    }
    let total_v: usize = vertices.iter().sum();
    let mut by_freq: Vec<_> = label_counts.into_iter().collect();
    by_freq.sort_by_key(|&(l, c)| (std::cmp::Reverse(c), l));
    let label_line = by_freq
        .iter()
        .take(8)
        .map(|(l, c)| {
            format!(
                "{} {:.1}%",
                interner.display(*l),
                *c as f64 / total_v as f64 * 100.0
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    Ok(format!(
        "graphs: {}\nedges: min {} / avg {:.1} / max {}\nvertices: min {} / avg {:.1} / max {}\ndistinct edge labels: {}\nvertex labels: {}",
        db.len(),
        edges.iter().min().copied().unwrap_or(0),
        edges.iter().sum::<usize>() as f64 / db.len() as f64,
        edges.iter().max().copied().unwrap_or(0),
        vertices.iter().min().copied().unwrap_or(0),
        total_v as f64 / db.len() as f64,
        vertices.iter().max().copied().unwrap_or(0),
        stats.labels().len(),
        label_line,
    ))
}

/// Apply the `--threads` flag (any subcommand accepts it).
///
/// `0` means auto-size to `available_parallelism()`; `1` pins the
/// parallel fan-outs to the exact sequential legacy behavior. When the
/// flag is absent the process-wide default stands (the
/// `CATAPULT_THREADS` env var, else auto) — we deliberately do not
/// overwrite it so env-configured runs keep working.
fn apply_threads(flags: &Flags) -> Result<(), CliError> {
    if flags.get("threads").is_some() {
        let n: usize = flags.num("threads", 0)?;
        rayon::set_threads(n);
    }
    Ok(())
}

/// Dispatch a full argument vector (without the program name).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let flags = Flags::parse(rest)?;
    apply_threads(&flags)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "select" => cmd_select(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "stats" => cmd_stats(&flags),
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("catapult-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn flags_parse_and_validate() {
        let f = Flags::parse(&args(&["--count", "5", "--seed", "9"])).unwrap();
        assert_eq!(f.num::<usize>("count", 0).unwrap(), 5);
        assert_eq!(f.num::<u64>("missing", 3).unwrap(), 3);
        assert!(f.require("nope").is_err());
        assert!(Flags::parse(&args(&["--dangling"])).is_err());
        assert!(Flags::parse(&args(&["positional"])).is_err());
    }

    #[test]
    fn generate_select_evaluate_round_trip() {
        let db_path = tmp("db.txt");
        let pat_path = tmp("patterns.txt");
        let out = run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "25",
            "--seed",
            "3",
            "--out",
            &db_path,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "4",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "15",
            "--out",
            &pat_path,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let report = run(&args(&[
            "evaluate",
            "--db",
            &db_path,
            "--patterns",
            &pat_path,
            "--queries",
            "15",
        ]))
        .unwrap();
        assert!(report.contains("missed percentage"));
        assert!(report.contains("scov"));
    }

    #[test]
    fn stats_reports_shape() {
        let db_path = tmp("db_stats.txt");
        run(&args(&[
            "generate",
            "--profile",
            "aids",
            "--count",
            "10",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let report = run(&args(&["stats", "--db", &db_path])).unwrap();
        assert!(report.contains("graphs: 10"));
        assert!(report.contains("C ")); // carbon leads the label histogram
    }

    #[test]
    fn bad_inputs_give_usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["generate", "--profile", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["stats", "--db", "/nonexistent/file"])),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn select_reports_search_completeness() {
        let db_path = tmp("db_budget.txt");
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "20",
            "--seed",
            "8",
            "--out",
            &db_path,
        ]))
        .unwrap();
        // Unconstrained: the report must say the run was exact.
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("% search: all"), "missing summary: {out}");
        assert!(out.contains("exact"), "missing exactness: {out}");
        // A zero-millisecond deadline degrades but still produces output.
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "10",
            "--deadline-ms",
            "0",
            "--search-budget",
            "50000",
        ]))
        .unwrap();
        assert!(out.contains("% search:"), "missing summary: {out}");
        assert!(out.contains("degraded"), "deadline 0 must degrade: {out}");
    }

    #[test]
    fn select_rejects_bad_deadline() {
        let db_path = tmp("db_bad_deadline.txt");
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "5",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let r = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--deadline-ms",
            "soon",
        ]));
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn threads_flag_is_validated() {
        // Invalid values are usage errors before any work happens.
        let r = run(&args(&["stats", "--db", "x", "--threads", "many"]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        // A valid value is accepted by every subcommand (the run itself
        // then proceeds; here generate exercises the full path).
        let db_path = tmp("db_threads.txt");
        let out = run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "5",
            "--threads",
            "1",
            "--out",
            &db_path,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        assert_eq!(rayon::current_threads(), 1);
        // Restore auto sizing for the rest of the binary's tests.
        rayon::set_threads(0);
    }

    #[test]
    fn select_rejects_bad_budget() {
        let db_path = tmp("db2.txt");
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "5",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let r = run(&args(&["select", "--db", &db_path, "--min-size", "1"]));
        assert!(matches!(r, Err(CliError::Usage(_))));
    }
}
