//! Command-line interface logic (see `src/bin/catapult.rs`).
//!
//! The subcommands wrap the library the way a downstream deployment would:
//!
//! ```text
//! catapult generate --profile aids --count 500 --seed 7 --out db.txt
//! catapult select   --db db.txt --gamma 30 --min-size 3 --max-size 12 --out patterns.txt
//! catapult evaluate --db db.txt --patterns patterns.txt --queries 200
//! catapult stats    --db db.txt
//! ```
//!
//! Graphs are read and written in the gSpan-style transaction format of
//! [`catapult_graph::fmt`]. All logic lives here (unit-testable); the
//! binary only forwards `std::env::args` and prints.

use catapult_ckpt::{CheckpointConfig, CkptError};
use catapult_core::{
    run_catapult, run_catapult_resumable, CatapultConfig, PatternBudget, PipelineReport,
};
use catapult_datasets::{aids_profile, emol_profile, generate, pubchem_profile, random_queries};
use catapult_eval::WorkloadEvaluation;
use catapult_graph::fmt::{parse_graphs, write_graphs};
use catapult_graph::{Deadline, Graph, LabelInterner, SearchBudget};
use catapult_obs::json::Value;
use catapult_obs::progress::ProgressMeter;
use catapult_obs::{chrome, flight, manifest, ManifestError, Recorder, RunManifest};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// CLI errors.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or malformed flags.
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Input file did not parse.
    Parse(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<ManifestError> for CliError {
    fn from(e: ManifestError) -> Self {
        match e {
            ManifestError::Io(io) => CliError::Io(io),
            // Schema mismatch is an operator decision point (`--force`),
            // not an I/O failure.
            other @ ManifestError::SchemaMismatch { .. } => CliError::Usage(other.to_string()),
        }
    }
}

impl From<CkptError> for CliError {
    fn from(e: CkptError) -> Self {
        match e {
            CkptError::Io { path, source } => CliError::Io(std::io::Error::new(
                source.kind(),
                format!("{path}: {source}"),
            )),
            // Stale/foreign/guarded checkpoints are operator decision
            // points (`--resume`, `--force`, another directory), not
            // I/O failures.
            other => CliError::Usage(other.to_string()),
        }
    }
}

/// Flags that take no value — their presence is the value.
const BOOL_FLAGS: &[&str] = &["trace", "force", "resume", "keep-going", "progress"];

/// Parsed `--key value` flags.
#[derive(Debug)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parse `--key value` pairs (and the valueless switches in
    /// [`BOOL_FLAGS`]); rejects dangling flags.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --flag, got '{a}'")))?;
            if BOOL_FLAGS.contains(&key) {
                switches.push(key.to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{key} needs a value")))?;
            values.insert(key.to_string(), value.clone());
        }
        Ok(Flags { values, switches })
    }

    /// True when a valueless switch (e.g. `--trace`) was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("--{key} is required")))
    }

    /// Optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Optional numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} got invalid value '{v}'"))),
        }
    }
}

/// Per-invocation observability session: the [`Recorder`] every stage
/// reports into, plus the manifest sections individual subcommands
/// contribute (pipeline report, budget configuration, …).
#[derive(Debug)]
pub struct ObsSession {
    /// Disabled (a no-op) unless `--metrics-out` or `--trace` was given.
    pub recorder: Recorder,
    sections: Vec<(String, Value)>,
}

impl ObsSession {
    fn new(enabled: bool) -> ObsSession {
        ObsSession {
            recorder: if enabled {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            },
            sections: Vec::new(),
        }
    }

    /// Contribute a named manifest section. No-op when observability is
    /// off, so subcommands call it unconditionally.
    pub fn section(&mut self, key: &str, value: Value) {
        if self.recorder.is_enabled() {
            self.sections.push((key.to_string(), value));
        }
    }
}

/// The [`PipelineReport`] as a manifest section: per-stage completeness
/// tallies plus the overall verdict.
fn report_value(report: &PipelineReport) -> Value {
    let mut v = Value::object();
    v.set("all_exact", report.all_exact());
    v.set("worst", report.worst().name());
    for (stage, t) in report.stages() {
        let mut tv = Value::object();
        tv.set("exact", t.exact);
        tv.set("budget_exhausted", t.budget_exhausted);
        tv.set("deadline_exceeded", t.deadline_exceeded);
        tv.set("cancelled", t.cancelled);
        tv.set("failed", t.failed);
        v.set(stage, tv);
    }
    v
}

/// Top-level usage text.
pub const USAGE: &str = "usage: catapult <generate|select|evaluate|stats> [--flags]\n\
  generate --profile aids|pubchem|emol --count N [--seed S] [--out FILE]\n\
  select   --db FILE [--gamma N] [--min-size A] [--max-size B] [--walks W] [--seed S]\n\
           [--search-budget NODES] [--deadline-ms MS] [--threads N] [--out FILE]\n\
           [--checkpoint-dir DIR] [--resume] [--keep-going]\n\
  evaluate --db FILE --patterns FILE [--queries N] [--min-edges A] [--max-edges B] [--seed S]\n\
           [--threads N]\n\
  stats    --db FILE\n\
common:\n\
  --threads N        worker threads for the parallel fan-outs: 0 = auto\n\
                     (all cores), 1 = exact sequential legacy behavior\n\
                     (default: CATAPULT_THREADS env var, else auto)\n\
  --metrics-out FILE write a schema-versioned JSON run manifest (spans,\n\
                     kernel counters, environment) after the command\n\
  --trace            print a per-stage wall-time / kernel-effort table\n\
  --trace-out FILE   write the span tree as Chrome trace-event JSON\n\
                     (loadable in chrome://tracing, Perfetto, Speedscope)\n\
  --folded-out FILE  write folded flame stacks (flamegraph.pl / inferno\n\
                     collapse format, weighted by span self time)\n\
  --flight-out FILE  dump the flight-recorder event log to FILE at exit;\n\
                     the same path is armed as the crash-dump target, so\n\
                     a panicking run leaves its last moments behind\n\
  --progress         print a live heartbeat (stage, items, probes/sec,\n\
                     ETA) to stderr every second; never touches stdout\n\
  --force            overwrite an output file whose schema_version differs\n\
                     (metrics/trace/flight), or wipe a checkpoint\n\
                     directory and start over\n\
select crash safety:\n\
  --checkpoint-dir D write a checkpoint at every pipeline stage boundary\n\
                     (and mid-fine-clustering) under D\n\
  --resume           continue from the furthest compatible checkpoint in\n\
                     --checkpoint-dir instead of refusing a populated one\n\
  --keep-going       isolate a panicking parallel worker to its own item\n\
                     (reported as 'failed' in the run report) instead of\n\
                     aborting the run";

fn load_db(path: &str, interner: &mut LabelInterner) -> Result<Vec<Graph>, CliError> {
    let text = std::fs::read_to_string(path)?;
    parse_graphs(&text, interner).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

fn emit(out: Option<&str>, content: &str) -> Result<String, CliError> {
    match out {
        Some(path) => {
            std::fs::write(path, content)?;
            Ok(format!("wrote {path}"))
        }
        None => Ok(content.to_string()),
    }
}

/// `generate`: write a synthetic repository.
pub fn cmd_generate(flags: &Flags, obs: &mut ObsSession) -> Result<String, CliError> {
    let _span = obs.recorder.span("generate");
    let profile = match flags.require("profile")? {
        "aids" => aids_profile(),
        "pubchem" => pubchem_profile(),
        "emol" => emol_profile(),
        other => return Err(CliError::Usage(format!("unknown profile '{other}'"))),
    };
    let count: usize = flags.num("count", 100)?;
    let seed: u64 = flags.num("seed", 42)?;
    let db = generate(&profile, count, seed);
    obs.recorder
        .counter("generate.db.graphs")
        .add(db.graphs.len() as u64);
    let text = write_graphs(&db.graphs, &db.interner);
    emit(flags.get("out"), &text)
}

/// `select`: run the pipeline and write the canned patterns.
pub fn cmd_select(flags: &Flags, obs: &mut ObsSession) -> Result<String, CliError> {
    let mut interner = LabelInterner::new();
    let db = load_db(flags.require("db")?, &mut interner)?;
    let gamma: usize = flags.num("gamma", 30)?;
    let min_size: usize = flags.num("min-size", 3)?;
    let max_size: usize = flags.num("max-size", 12)?;
    let budget = PatternBudget::new(min_size, max_size, gamma)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    // Execution budget: `--search-budget` caps the nodes each NP-hard
    // kernel may expand; `--deadline-ms` bounds the whole run's wall
    // clock. Either alone is fine; unset means per-stage defaults.
    let mut search = match flags.num::<u64>("search-budget", u64::MAX)? {
        u64::MAX => SearchBudget::unbounded(),
        cap => SearchBudget::nodes(cap),
    };
    if let Some(ms) = flags.get("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| CliError::Usage(format!("--deadline-ms got invalid value '{ms}'")))?;
        search = search.with_deadline(Deadline::from_now(Duration::from_millis(ms)));
    }
    let mut cfg = CatapultConfig {
        budget,
        walks: flags.num("walks", 100)?,
        seed: flags.num("seed", 0xCA7A)?,
        search,
        recorder: obs.recorder.clone(),
        ..Default::default()
    };
    cfg.clustering.keep_going = flags.switch("keep-going");
    if flags.switch("resume") && flags.get("checkpoint-dir").is_none() {
        return Err(CliError::Usage(
            "--resume needs --checkpoint-dir to resume from".into(),
        ));
    }
    // Budget configuration as given, so a manifest is self-describing.
    let mut budget_v = Value::object();
    budget_v.set("gamma", gamma as u64);
    budget_v.set("min_size", min_size as u64);
    budget_v.set("max_size", max_size as u64);
    budget_v.set("walks", cfg.walks as u64);
    budget_v.set("seed", cfg.seed);
    match flags.num::<u64>("search-budget", u64::MAX)? {
        u64::MAX => budget_v.set("search_nodes", Value::Null),
        cap => budget_v.set("search_nodes", cap),
    };
    match flags.get("deadline-ms") {
        None => budget_v.set("deadline_ms", Value::Null),
        Some(ms) => budget_v.set("deadline_ms", ms.parse::<u64>().unwrap_or(0)),
    };
    obs.section("budget", budget_v);
    let result = match flags.get("checkpoint-dir") {
        None => run_catapult(&db, &cfg),
        Some(dir) => {
            let mut ckpt = CheckpointConfig::new(Path::new(dir));
            ckpt.resume = flags.switch("resume");
            ckpt.force = flags.switch("force");
            run_catapult_resumable(&db, &cfg, &ckpt)?
        }
    };
    let patterns = result.patterns();
    let text = write_graphs(&patterns, &interner);
    let report = result.report();
    let summary = format!(
        "% {} patterns selected from {} graphs (clustering {:.2}s, PGT {:.2}s)\n% search: {}\n",
        patterns.len(),
        db.len(),
        result.clustering_time().as_secs_f64(),
        result.pattern_generation_time().as_secs_f64(),
        report.summary().replace('\n', "\n% "),
    );
    obs.section("report", report_value(report));
    emit(flags.get("out"), &format!("{summary}{text}"))
}

/// `evaluate`: workload metrics of a pattern file against a repository.
pub fn cmd_evaluate(flags: &Flags, obs: &mut ObsSession) -> Result<String, CliError> {
    let mut interner = LabelInterner::new();
    let db = load_db(flags.require("db")?, &mut interner)?;
    // Same interner: label names shared between the two files.
    let patterns = load_db(flags.require("patterns")?, &mut interner)?;
    let n: usize = flags.num("queries", 200)?;
    let lo: usize = flags.num("min-edges", 4)?;
    let hi: usize = flags.num("max-edges", 25)?;
    let seed: u64 = flags.num("seed", 7)?;
    let queries = random_queries(&db, n, (lo, hi), seed);
    let ev = WorkloadEvaluation::evaluate_recorded(&patterns, &queries, &obs.recorder);
    let mut eval_v = Value::object();
    eval_v.set("queries", queries.len() as u64);
    eval_v.set("mean_reduction", ev.mean_reduction());
    eval_v.set("missed_percentage", ev.missed_percentage());
    obs.section("evaluation", eval_v);
    Ok(format!(
        "queries: {}\nmean step reduction: {:.1}%\nmax step reduction: {:.1}%\nmissed percentage: {:.1}%\nscov: {:.3}\nlcov: {:.3}\nmean cog: {:.2}\nmean div: {:.2}",
        queries.len(),
        ev.mean_reduction() * 100.0,
        ev.max_reduction() * 100.0,
        ev.missed_percentage(),
        catapult_eval::measures::subgraph_coverage(&patterns, &db),
        catapult_eval::measures::label_coverage(&patterns, &db),
        catapult_eval::measures::mean_cog(&patterns),
        catapult_eval::measures::mean_diversity(&patterns),
    ))
}

/// `stats`: repository summary.
pub fn cmd_stats(flags: &Flags, obs: &mut ObsSession) -> Result<String, CliError> {
    let _span = obs.recorder.span("stats");
    let mut interner = LabelInterner::new();
    let db = load_db(flags.require("db")?, &mut interner)?;
    if db.is_empty() {
        return Ok("empty repository".into());
    }
    let edges: Vec<usize> = db.iter().map(Graph::edge_count).collect();
    let vertices: Vec<usize> = db.iter().map(Graph::vertex_count).collect();
    let stats = catapult_mining::EdgeLabelStats::from_graphs(&db);
    let mut label_counts: HashMap<catapult_graph::Label, usize> = HashMap::new();
    for g in &db {
        for &l in g.labels() {
            *label_counts.entry(l).or_insert(0) += 1;
        }
    }
    let total_v: usize = vertices.iter().sum();
    let mut by_freq: Vec<_> = label_counts.into_iter().collect();
    by_freq.sort_by_key(|&(l, c)| (std::cmp::Reverse(c), l));
    let label_line = by_freq
        .iter()
        .take(8)
        .map(|(l, c)| {
            format!(
                "{} {:.1}%",
                interner.display(*l),
                *c as f64 / total_v as f64 * 100.0
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    Ok(format!(
        "graphs: {}\nedges: min {} / avg {:.1} / max {}\nvertices: min {} / avg {:.1} / max {}\ndistinct edge labels: {}\nvertex labels: {}",
        db.len(),
        edges.iter().min().copied().unwrap_or(0),
        edges.iter().sum::<usize>() as f64 / db.len() as f64,
        edges.iter().max().copied().unwrap_or(0),
        vertices.iter().min().copied().unwrap_or(0),
        total_v as f64 / db.len() as f64,
        vertices.iter().max().copied().unwrap_or(0),
        stats.labels().len(),
        label_line,
    ))
}

/// Apply the `--threads` flag (any subcommand accepts it).
///
/// `0` means auto-size to `available_parallelism()`; `1` pins the
/// parallel fan-outs to the exact sequential legacy behavior. When the
/// flag is absent the process-wide default stands (the
/// `CATAPULT_THREADS` env var, else auto) — we deliberately do not
/// overwrite it so env-configured runs keep working.
fn apply_threads(flags: &Flags) -> Result<(), CliError> {
    if flags.get("threads").is_some() {
        let n: usize = flags.num("threads", 0)?;
        rayon::set_threads(n);
    }
    Ok(())
}

/// Dispatch a full argument vector (without the program name).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let flags = Flags::parse(rest)?;
    // A malformed CATAPULT_THREADS is a usage error up front, not a
    // silently ignored setting.
    rayon::check_thread_env().map_err(CliError::Usage)?;
    apply_threads(&flags)?;
    let metrics_out = flags.get("metrics-out").map(str::to_string);
    let trace_out = flags.get("trace-out").map(str::to_string);
    let folded_out = flags.get("folded-out").map(str::to_string);
    let flight_out = flags.get("flight-out").map(str::to_string);
    let trace = flags.switch("trace");
    let progress = flags.switch("progress");
    let force = flags.switch("force");
    // Refuse schema-incompatible overwrites up front, before any work.
    // Metrics manifests, Chrome traces, and flight dumps all carry a
    // `schema_version`, so one guard (and one `--force`) governs them.
    for path in [&metrics_out, &trace_out, &flight_out]
        .into_iter()
        .flatten()
    {
        manifest::guard_overwrite(Path::new(path), force)?;
    }
    // Folded stacks are plain text (no schema field to check), so the
    // guard degrades to plain existence.
    if let Some(path) = &folded_out {
        if Path::new(path).exists() && !force {
            return Err(CliError::Usage(manifest::overwrite_refusal(
                path,
                "existing file would be overwritten",
            )));
        }
    }
    // The flight recorder is on for every CLI run — bounded memory, one
    // atomic load per event when nothing consumes it — so a crash always
    // has forensics to dump. The *file* is written only on request
    // (`--flight-out`) or by the armed panic hook.
    flight::set_enabled(true);
    if let Some(path) = &flight_out {
        flight::arm_crash_dump(Path::new(path));
    }
    let telemetry = trace || progress || trace_out.is_some() || folded_out.is_some();
    let mut obs = ObsSession::new(metrics_out.is_some() || telemetry);
    let meter =
        progress.then(|| ProgressMeter::start(&obs.recorder, std::time::Duration::from_secs(1)));
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags, &mut obs),
        "select" => cmd_select(&flags, &mut obs),
        "evaluate" => cmd_evaluate(&flags, &mut obs),
        "stats" => cmd_stats(&flags, &mut obs),
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    };
    // Stop the heartbeat before writing artifacts or composing output so
    // its stderr lines cannot interleave with the epilogue.
    drop(meter);
    let mut out = result?;
    if let Some(snapshot) = obs.recorder.snapshot() {
        if trace {
            out.push('\n');
            out.push_str(&catapult_obs::summary_table(&snapshot));
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, chrome::chrome_trace(&snapshot).render())?;
            out.push_str(&format!("\nwrote trace to {path}"));
        }
        if let Some(path) = &folded_out {
            std::fs::write(path, chrome::folded_stacks(&snapshot))?;
            out.push_str(&format!("\nwrote folded stacks to {path}"));
        }
        if let Some(path) = metrics_out {
            let mut m = RunManifest::new(cmd);
            let mut argv = Value::array();
            for a in rest {
                argv.push(a.as_str());
            }
            m.set("argv", argv);
            m.set(
                "environment",
                manifest::environment(rayon::current_threads()),
            );
            for (key, value) in std::mem::take(&mut obs.sections) {
                m.set(&key, value);
            }
            m.attach_snapshot(&snapshot);
            m.write(Path::new(&path), force)?;
            out.push_str(&format!("\nwrote metrics to {path}"));
        }
    }
    if let Some(path) = &flight_out {
        // Disarm first: the run succeeded, so a later unrelated panic
        // (e.g. in a caller's teardown) must not clobber this dump.
        flight::disarm_crash_dump();
        flight::dump_to(Path::new(path))?;
        out.push_str(&format!("\nwrote flight log to {path}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("catapult-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn flags_parse_and_validate() {
        let f = Flags::parse(&args(&["--count", "5", "--seed", "9"])).unwrap();
        assert_eq!(f.num::<usize>("count", 0).unwrap(), 5);
        assert_eq!(f.num::<u64>("missing", 3).unwrap(), 3);
        assert!(f.require("nope").is_err());
        assert!(Flags::parse(&args(&["--dangling"])).is_err());
        assert!(Flags::parse(&args(&["positional"])).is_err());
    }

    #[test]
    fn generate_select_evaluate_round_trip() {
        let db_path = tmp("db.txt");
        let pat_path = tmp("patterns.txt");
        let out = run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "25",
            "--seed",
            "3",
            "--out",
            &db_path,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "4",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "15",
            "--out",
            &pat_path,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let report = run(&args(&[
            "evaluate",
            "--db",
            &db_path,
            "--patterns",
            &pat_path,
            "--queries",
            "15",
        ]))
        .unwrap();
        assert!(report.contains("missed percentage"));
        assert!(report.contains("scov"));
    }

    #[test]
    fn stats_reports_shape() {
        let db_path = tmp("db_stats.txt");
        run(&args(&[
            "generate",
            "--profile",
            "aids",
            "--count",
            "10",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let report = run(&args(&["stats", "--db", &db_path])).unwrap();
        assert!(report.contains("graphs: 10"));
        assert!(report.contains("C ")); // carbon leads the label histogram
    }

    #[test]
    fn bad_inputs_give_usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["generate", "--profile", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["stats", "--db", "/nonexistent/file"])),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn select_reports_search_completeness() {
        let db_path = tmp("db_budget.txt");
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "20",
            "--seed",
            "8",
            "--out",
            &db_path,
        ]))
        .unwrap();
        // Unconstrained: the report must say the run was exact.
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("% search: all"), "missing summary: {out}");
        assert!(out.contains("exact"), "missing exactness: {out}");
        // A zero-millisecond deadline degrades but still produces output.
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "10",
            "--deadline-ms",
            "0",
            "--search-budget",
            "50000",
        ]))
        .unwrap();
        assert!(out.contains("% search:"), "missing summary: {out}");
        assert!(out.contains("degraded"), "deadline 0 must degrade: {out}");
    }

    #[test]
    fn select_rejects_bad_deadline() {
        let db_path = tmp("db_bad_deadline.txt");
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "5",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let r = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--deadline-ms",
            "soon",
        ]));
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn threads_flag_is_validated() {
        // Invalid values are usage errors before any work happens.
        let r = run(&args(&["stats", "--db", "x", "--threads", "many"]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        // A valid value is accepted by every subcommand (the run itself
        // then proceeds; here generate exercises the full path).
        let db_path = tmp("db_threads.txt");
        let out = run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "5",
            "--threads",
            "1",
            "--out",
            &db_path,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        assert_eq!(rayon::current_threads(), 1);
        // Restore auto sizing for the rest of the binary's tests.
        rayon::set_threads(0);
    }

    #[test]
    fn metrics_out_writes_versioned_manifest() {
        let db_path = tmp("db_metrics.txt");
        let m_path = tmp("metrics.json");
        let _ = std::fs::remove_file(&m_path);
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "15",
            "--seed",
            "5",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "10",
            "--metrics-out",
            &m_path,
        ]))
        .unwrap();
        assert!(out.contains("wrote metrics to"), "{out}");
        let manifest = std::fs::read_to_string(&m_path).unwrap();
        assert!(manifest.starts_with("{\n  \"schema_version\": 1,"));
        assert!(manifest.contains("\"command\": \"select\""));
        assert!(manifest.contains("\"pipeline\""), "missing root span");
        assert!(
            manifest.contains("mining.iso.calls"),
            "missing kernel counters"
        );
        assert!(manifest.contains("\"report\""), "missing pipeline report");
        assert!(manifest.contains("\"budget\""), "missing budget section");
        // The mining stage ran, so its VF2 counters must be nonzero.
        let calls = catapult_obs::json::extract_uint_field(&manifest, "mining.iso.calls").unwrap();
        assert!(calls > 0, "mining ran but recorded no kernel calls");
    }

    #[test]
    fn trace_prints_span_and_kernel_tables() {
        let db_path = tmp("db_trace.txt");
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "12",
            "--seed",
            "2",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "10",
            "--trace",
        ]))
        .unwrap();
        assert!(out.contains("pipeline"), "{out}");
        assert!(out.contains("probes/sec"), "{out}");
    }

    #[test]
    fn trace_out_writes_chrome_trace_and_folded_stacks() {
        let db_path = tmp("db_trace_out.txt");
        let t_path = tmp("trace_out.json");
        let f_path = tmp("folded_out.txt");
        let _ = std::fs::remove_file(&t_path);
        let _ = std::fs::remove_file(&f_path);
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "12",
            "--seed",
            "2",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let select = |extra: &[&str]| {
            let mut a = args(&[
                "select",
                "--db",
                &db_path,
                "--gamma",
                "3",
                "--min-size",
                "3",
                "--max-size",
                "5",
                "--walks",
                "10",
                "--trace-out",
                &t_path,
                "--folded-out",
                &f_path,
            ]);
            a.extend(extra.iter().map(|s| s.to_string()));
            run(&a)
        };
        let out = select(&[]).unwrap();
        assert!(out.contains("wrote trace to"), "{out}");
        assert!(out.contains("wrote folded stacks to"), "{out}");
        // The trace must be structurally valid Chrome trace-event JSON.
        let trace = std::fs::read_to_string(&t_path).unwrap();
        assert_eq!(
            catapult_obs::schema_version_of(&trace),
            Some(chrome::TRACE_SCHEMA_VERSION)
        );
        let parsed = catapult_obs::json::parse(&trace).unwrap();
        match parsed.get("traceEvents") {
            Some(Value::Array(events)) => assert!(!events.is_empty()),
            other => panic!("traceEvents missing: {other:?}"),
        }
        assert!(trace.contains("\"pipeline\""), "missing root span");
        // Folded stacks: `path;to;span <ns>` lines rooted at the pipeline.
        let folded = std::fs::read_to_string(&f_path).unwrap();
        assert!(
            folded.lines().any(|l| l.starts_with("pipeline;")),
            "{folded}"
        );
        for line in folded.lines() {
            let (_, w) = line.rsplit_once(' ').expect("weighted line");
            let _: u64 = w.parse().expect("integer weight");
        }
        // Overwriting the (schema-less) folded file needs --force, and
        // the refusal names the flag.
        let r = select(&[]);
        assert!(
            matches!(&r, Err(CliError::Usage(m)) if m.contains("--force")),
            "{r:?}"
        );
        select(&["--force"]).unwrap();
        // A foreign-schema trace file is refused with the same message.
        std::fs::write(&t_path, "{\n  \"schema_version\": 999\n}\n").unwrap();
        let _ = std::fs::remove_file(&f_path);
        let r = select(&[]);
        assert!(
            matches!(&r, Err(CliError::Usage(m)) if m.contains("--force")),
            "{r:?}"
        );
        let _ = std::fs::remove_file(&t_path);
        let _ = std::fs::remove_file(&f_path);
    }

    #[test]
    fn flight_out_dumps_versioned_event_log() {
        let db_path = tmp("db_flight.txt");
        let fl_path = tmp("flight_out.json");
        let _ = std::fs::remove_file(&fl_path);
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "10",
            "--seed",
            "6",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let out = run(&args(&[
            "select",
            "--db",
            &db_path,
            "--gamma",
            "3",
            "--min-size",
            "3",
            "--max-size",
            "5",
            "--walks",
            "10",
            "--flight-out",
            &fl_path,
        ]))
        .unwrap();
        assert!(out.contains("wrote flight log to"), "{out}");
        let text = std::fs::read_to_string(&fl_path).unwrap();
        assert_eq!(
            catapult_obs::schema_version_of(&text),
            Some(flight::FLIGHT_SCHEMA_VERSION)
        );
        let parsed = catapult_obs::json::parse(&text).unwrap();
        match parsed.get("events") {
            Some(Value::Array(events)) => assert!(!events.is_empty()),
            other => panic!("events missing: {other:?}"),
        }
        // Span boundaries and kernel flushes must both be on the record.
        assert!(text.contains("flight.span.open"), "no span events");
        assert!(text.contains("flight.probe.flush"), "no probe events");
        let _ = std::fs::remove_file(&fl_path);
    }

    #[test]
    fn progress_switch_is_accepted_and_output_neutral() {
        let db_path = tmp("db_progress.txt");
        let quiet = run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "10",
            "--seed",
            "9",
        ]))
        .unwrap();
        let noisy = run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "10",
            "--seed",
            "9",
            "--progress",
        ]))
        .unwrap();
        // The heartbeat goes to stderr only: stdout is byte-identical.
        assert_eq!(quiet, noisy);
        let _ = std::fs::remove_file(&db_path);
    }

    #[test]
    fn metrics_out_refuses_foreign_schema_without_force() {
        let db_path = tmp("db_guard.txt");
        let m_path = tmp("metrics_guard.json");
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "8",
            "--out",
            &db_path,
        ]))
        .unwrap();
        std::fs::write(&m_path, "{\n  \"schema_version\": 999\n}\n").unwrap();
        let r = run(&args(&[
            "stats",
            "--db",
            &db_path,
            "--metrics-out",
            &m_path,
        ]));
        assert!(matches!(r, Err(CliError::Usage(_))), "guard must refuse");
        // --force overrides; the file is rewritten at the current schema.
        let out = run(&args(&[
            "stats",
            "--db",
            &db_path,
            "--metrics-out",
            &m_path,
            "--force",
        ]))
        .unwrap();
        assert!(out.contains("wrote metrics to"), "{out}");
        let manifest = std::fs::read_to_string(&m_path).unwrap();
        assert_eq!(
            catapult_obs::schema_version_of(&manifest),
            Some(catapult_obs::SCHEMA_VERSION)
        );
    }

    #[test]
    fn select_checkpoints_and_resumes() {
        let db_path = tmp("db_ckpt.txt");
        let ckpt_dir = tmp("ckpt_dir");
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "15",
            "--seed",
            "4",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let select = |extra: &[&str]| {
            let mut a = args(&[
                "select",
                "--db",
                &db_path,
                "--gamma",
                "3",
                "--min-size",
                "3",
                "--max-size",
                "5",
                "--walks",
                "10",
                "--checkpoint-dir",
                &ckpt_dir,
            ]);
            a.extend(extra.iter().map(|s| s.to_string()));
            run(&a)
        };
        let first = select(&[]).unwrap();
        assert!(std::path::Path::new(&ckpt_dir)
            .join("clustering.ckpt")
            .exists());
        // A populated directory is refused without --resume/--force…
        let r = select(&[]);
        assert!(
            matches!(&r, Err(CliError::Usage(m)) if m.contains("--force")),
            "{r:?}"
        );
        // …and --resume reproduces the run from its checkpoints.
        let resumed = select(&["--resume"]).unwrap();
        let strip_timings = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('%'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip_timings(&resumed), strip_timings(&first));
        // --resume without a directory is a usage error.
        let r = run(&args(&["select", "--db", &db_path, "--resume"]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn select_rejects_bad_budget() {
        let db_path = tmp("db2.txt");
        run(&args(&[
            "generate",
            "--profile",
            "emol",
            "--count",
            "5",
            "--out",
            &db_path,
        ]))
        .unwrap();
        let r = run(&args(&["select", "--db", &db_path, "--min-size", "1"]));
        assert!(matches!(r, Err(CliError::Usage(_))));
    }
}
