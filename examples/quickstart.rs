//! Quickstart: select canned patterns for a synthetic compound repository.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Examples favor brevity: failing fast on a bad input is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult::prelude::*;
use catapult::{datasets, eval, graph};

/// Render a pattern as `label-label` edge list for terminal output.
fn show(g: &Graph, interner: &graph::LabelInterner) -> String {
    let edges: Vec<String> = g
        .edges()
        .map(|(_, e)| {
            format!(
                "{}{}-{}{}",
                interner.display(g.label(e.u)),
                e.u.0,
                interner.display(g.label(e.v)),
                e.v.0
            )
        })
        .collect();
    edges.join(" ")
}

fn main() {
    // 1. A repository of 120 synthetic AIDS-like molecules.
    let db = datasets::generate(&datasets::aids_profile(), 120, 42);
    println!(
        "repository: {} graphs, avg size {:.1} edges",
        db.len(),
        db.graphs.iter().map(Graph::edge_count).sum::<usize>() as f64 / db.len() as f64
    );

    // 2. Run CATAPULT with the paper's default budget scaled down:
    //    γ = 10 patterns, sizes 3–8 edges.
    let cfg = CatapultConfig {
        budget: PatternBudget::new(3, 8, 10).expect("valid budget"),
        walks: 50,
        ..Default::default()
    };
    let result = run_catapult(&db.graphs, &cfg);
    println!(
        "clustered into {} CSGs in {:.2}s; selected {} patterns in {:.2}s (PGT)",
        result.csgs.len(),
        result.clustering_time().as_secs_f64(),
        result.patterns().len(),
        result.pattern_generation_time().as_secs_f64()
    );

    // 3. Inspect the selected canned patterns.
    println!("\ncanned patterns (score = ccov × lcov × div / cog):");
    for (i, sel) in result.selection.selected.iter().enumerate() {
        println!(
            "  P{:<2} |V|={:<2} |E|={:<2} cog={:.2} score={:.4}  {}",
            i + 1,
            sel.pattern.vertex_count(),
            sel.pattern.edge_count(),
            graph::metrics::cognitive_load(&sel.pattern),
            sel.score,
            show(&sel.pattern, &db.interner)
        );
    }

    // 4. How much do they help? Formulate 100 random queries.
    let queries = datasets::random_queries(&db.graphs, 100, (4, 25), 7);
    let patterns = result.patterns();
    let ev = eval::WorkloadEvaluation::evaluate(&patterns, &queries);
    println!(
        "\nworkload: 100 queries — avg step reduction {:.1}%, max {:.1}%, missed {:.1}%",
        ev.mean_reduction() * 100.0,
        ev.max_reduction() * 100.0,
        ev.missed_percentage()
    );

    // 5. Coverage of the repository.
    println!(
        "coverage: scov = {:.3}, lcov = {:.3}",
        eval::measures::subgraph_coverage(&patterns, &db.graphs),
        eval::measures::label_coverage(&patterns, &db.graphs)
    );
}
