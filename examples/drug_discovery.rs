//! The paper's §1 motivating scenario: formulating urea-derivative queries
//! (DCMU, TMAD, sorafenib-like structures) against a drug-like compound
//! repository.
//!
//! Shows the three-way comparison of Example 1.1: edge-at-a-time
//! construction vs a PubChem-style unlabeled panel vs CATAPULT's
//! data-driven labeled patterns.
//!
//! ```text
//! cargo run --release --example drug_discovery
//! ```

// Examples favor brevity: failing fast on a bad input is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult::prelude::*;
use catapult::{datasets, eval, graph};
use catapult_eval::steps::DEFAULT_EMBEDDING_CAP;

/// Build a TMAD-like query: two urea motifs N-C(-O)-N joined by an N-N
/// bond (tetramethylazodicarboxamide skeleton, §1 Example 1.1).
fn tmad_query(interner: &graph::LabelInterner) -> Graph {
    let c = interner.get("C").expect("C interned");
    let n = interner.get("N").expect("N interned");
    let o = interner.get("O").expect("O interned");
    // vertices: N0 C1(=O2) N3 - N4 C5(=O6) N7
    let labels = [n, c, o, n, n, c, o, n];
    let edges = [
        (0, 1),
        (1, 2),
        (1, 3),
        (3, 4), // azo link between the two halves
        (4, 5),
        (5, 6),
        (5, 7),
    ];
    Graph::from_parts(&labels, &edges)
}

/// A DCMU-like query: benzene ring + urea tail.
fn dcmu_query(interner: &graph::LabelInterner) -> Graph {
    let c = interner.get("C").unwrap();
    let n = interner.get("N").unwrap();
    let o = interner.get("O").unwrap();
    let cl = interner.get("Cl").unwrap();
    // ring C0..C5, Cl on C0 and C1, N6-C7(-O8)-N9 tail on C3
    let labels = [c, c, c, c, c, c, cl, cl, n, c, o, n];
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 0),
        (0, 6),
        (1, 7),
        (3, 8),
        (8, 9),
        (9, 10),
        (9, 11),
    ];
    Graph::from_parts(&labels, &edges)
}

fn main() {
    // A repository rich in urea-like functional groups (the generator
    // plants them, mirroring a medicinal-chemistry catalogue).
    let db = datasets::generate(&datasets::aids_profile(), 200, 11);

    // Select 12 canned patterns, sizes 3–8 (a PubChem-sized panel).
    let cfg = CatapultConfig {
        budget: PatternBudget::new(3, 8, 12).expect("valid budget"),
        walks: 60,
        ..Default::default()
    };
    let result = run_catapult(&db.graphs, &cfg);
    let catapult_panel = result.patterns();
    let gui_panel = catapult::eval::gui::pubchem_gui_patterns();

    println!(
        "panel: {} CATAPULT patterns vs {} PubChem-style unlabeled patterns\n",
        catapult_panel.len(),
        gui_panel.len()
    );

    let queries = [
        ("TMAD-like", tmad_query(&db.interner)),
        ("DCMU-like", dcmu_query(&db.interner)),
    ];
    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>10}",
        "query", "|E|", "edge-at-a-time", "PubChem-style", "CATAPULT"
    );
    for (name, q) in &queries {
        let baseline = eval::step_total(q);
        let f_gui = eval::formulate_unlabeled(q, &gui_panel, DEFAULT_EMBEDDING_CAP);
        let f_cat = eval::formulate(q, &catapult_panel, DEFAULT_EMBEDDING_CAP);
        println!(
            "{:<12} {:>6} {:>14} {:>14} {:>10}",
            name,
            q.edge_count(),
            baseline,
            f_gui.steps,
            f_cat.steps
        );
    }

    // Broader picture: a mixed workload of 150 drug-like queries.
    let workload = datasets::random_queries(&db.graphs, 150, (6, 30), 5);
    let ev_cat = eval::WorkloadEvaluation::evaluate(&catapult_panel, &workload);
    let gui_steps: usize = workload
        .iter()
        .map(|q| eval::formulate_unlabeled(q, &gui_panel, DEFAULT_EMBEDDING_CAP).steps)
        .sum();
    println!(
        "\nworkload of {} queries: CATAPULT total steps {}, PubChem-style {}, edge-at-a-time {}",
        workload.len(),
        ev_cat.total_steps(),
        gui_steps,
        workload.iter().map(eval::step_total).sum::<usize>()
    );
    println!(
        "CATAPULT: avg step reduction {:.1}%, missed {:.1}% of queries",
        ev_cat.mean_reduction() * 100.0,
        ev_cat.missed_percentage()
    );

    // Finally, *execute* the formulated queries: subgraph search over the
    // repository with the filter-verify index (the §1 retrieval primitive).
    let index = catapult::mining::GraphIndex::build(
        &db.graphs,
        &catapult::mining::SubtreeMinerConfig {
            min_support: 0.1,
            max_edges: 3,
            ..Default::default()
        },
    );
    println!(
        "\nsubgraph search (index: {} subtree features):",
        index.feature_count()
    );
    for (name, q) in &queries {
        let (hits, stats) = index.search(&db.graphs, q);
        println!(
            "  {name}: {} matching compounds ({} candidates after filtering {} graphs)",
            hits.len(),
            stats.candidates,
            db.len()
        );
    }
}
