//! Query-log-aware pattern selection — the §3.3 extension.
//!
//! CATAPULT is log-oblivious by design (cold-start friendly), but once an
//! interface has been in production, its query log predicts what users
//! will formulate next. This example compares an oblivious panel with a
//! log-aware one on a workload drawn from the same distribution as the
//! log.
//!
//! ```text
//! cargo run --release --example query_log
//! ```

// Examples favor brevity: failing fast on a bad input is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult::core::{find_canned_patterns, QueryLog};
use catapult::prelude::*;
use catapult::{cluster, csg, datasets, eval};
use rand::SeedableRng;

fn main() {
    let db = datasets::generate(&datasets::pubchem_profile(), 150, 71);
    let mut rng = rand::rngs::StdRng::seed_from_u64(73);
    let clustering =
        cluster::cluster_graphs(&db.graphs, &cluster::ClusteringConfig::default(), &mut rng);
    let csgs = csg::build_csgs(&db.graphs, &clustering.clusters);

    // Users have historically queried a narrow slice of the catalogue
    // (say, one compound family).
    let family: Vec<Graph> = db.graphs[..20].to_vec();
    let history = datasets::random_queries(&family, 60, (4, 15), 79);
    let log = QueryLog::new(history);
    println!(
        "log: {} recorded queries over a {}-compound family",
        log.len(),
        family.len()
    );

    let budget = PatternBudget::new(3, 8, 10).expect("valid budget");
    let select = |query_log: Option<QueryLog>, seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        find_canned_patterns(
            &db.graphs,
            &csgs,
            &SelectionConfig {
                budget: budget.clone(),
                walks: 50,
                query_log,
                log_weight: 4.0,
                ..Default::default()
            },
            &mut rng,
        )
        .patterns()
    };
    let oblivious = select(None, 83);
    let aware = select(Some(log), 83);

    // Tomorrow's workload comes from the same family.
    let future = datasets::random_queries(&family, 80, (4, 15), 89);
    let ev_obl = eval::WorkloadEvaluation::evaluate(&oblivious, &future);
    let ev_aware = eval::WorkloadEvaluation::evaluate(&aware, &future);
    println!("{:<14} {:>10} {:>8}", "panel", "avg mu", "MP");
    for (name, ev) in [("oblivious", &ev_obl), ("log-aware", &ev_aware)] {
        println!(
            "{:<14} {:>9.1}% {:>7.1}%",
            name,
            ev.mean_reduction() * 100.0,
            ev.missed_percentage()
        );
    }
    println!(
        "\nthe boost multiplies Eq. 2 scores by 1 + λ·freq(p); zero-frequency \
         patterns keep their base score, so cold-start behaviour is unchanged."
    );
}
