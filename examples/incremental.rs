//! Incremental maintenance of canned patterns as the repository evolves —
//! the extension sketched in the paper's §1 ("it can be extended to
//! support incremental maintenance of canned patterns as the underlying
//! data graphs evolve"), implemented by
//! [`catapult::core::incremental::IncrementalCatapult`]:
//!
//! 1. cluster + summarize the initial repository once (the expensive
//!    phase);
//! 2. arriving graphs are assigned to the most MCCS-similar CSG, or pooled
//!    as outliers until the pool matures into new clusters (Algorithm 3);
//! 3. only touched CSGs are rebuilt and selection reruns.
//!
//! ```text
//! cargo run --release --example incremental
//! ```

// Examples favor brevity: failing fast on a bad input is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult::core::incremental::{IncrementalCatapult, IncrementalConfig};
use catapult::prelude::*;
use catapult::{cluster, datasets, eval, graph};
use rand::SeedableRng;

fn main() {
    // Initial repository, clustered once.
    let initial = datasets::generate(&datasets::aids_profile(), 120, 51);
    let mut rng = rand::rngs::StdRng::seed_from_u64(53);
    let clustering = cluster::cluster_graphs(
        &initial.graphs,
        &cluster::ClusteringConfig::default(),
        &mut rng,
    );
    println!(
        "v1: {} graphs clustered into {} clusters in {:.2}s",
        initial.len(),
        clustering.clusters.len(),
        clustering.elapsed.as_secs_f64()
    );

    let cfg = IncrementalConfig {
        selection: SelectionConfig {
            budget: PatternBudget::new(3, 8, 10).expect("valid budget"),
            walks: 50,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut inc = IncrementalCatapult::new(initial.graphs.clone(), clustering.clusters, cfg);
    let patterns_v1 = inc.refresh_patterns().patterns();
    println!("v1 panel: {} patterns", patterns_v1.len());

    // A batch of 40 new compounds arrives (different profile → new motifs).
    let arrivals = datasets::generate(&datasets::emol_profile(), 40, 59);
    let start = catapult_obs::Stopwatch::start();
    let stats = inc.insert_batch(arrivals.graphs.clone());
    let patterns_v2 = inc.refresh_patterns().patterns();
    println!(
        "v2: +40 graphs — {} assigned to existing clusters, {} outliers, {} CSGs rebuilt, \
         {} new clusters; maintenance + reselect took {:.2}s",
        stats.assigned,
        stats.outliers,
        stats.rebuilt_csgs,
        stats.new_clusters,
        start.elapsed().as_secs_f64()
    );

    // How much did the panel change, and did it keep up with the drift?
    let changed = patterns_v2
        .iter()
        .filter(|p| !patterns_v1.iter().any(|q| graph::iso::are_isomorphic(p, q)))
        .count();
    println!(
        "panel drift: {}/{} patterns replaced",
        changed,
        patterns_v2.len()
    );

    let new_queries = datasets::random_queries(&arrivals.graphs, 60, (4, 20), 61);
    let old_ev = eval::WorkloadEvaluation::evaluate(&patterns_v1, &new_queries);
    let new_ev = eval::WorkloadEvaluation::evaluate(&patterns_v2, &new_queries);
    println!(
        "on queries over the new arrivals: MP {:.1}% (stale panel) vs {:.1}% (maintained), \
         avg step reduction {:.1}% vs {:.1}%",
        old_ev.missed_percentage(),
        new_ev.missed_percentage(),
        old_ev.mean_reduction() * 100.0,
        new_ev.mean_reduction() * 100.0,
    );
}
