//! A GUI designer exploring pattern budgets.
//!
//! The paper's Definition 3.1 exposes the budget `b = (ηmin, ηmax, γ)` to
//! the interface designer. This example sweeps panel sizes and size
//! ranges over one repository and prints the trade-off surface the
//! designer would navigate: formulation savings (μ), workload coverage
//! (MP), panel complexity (mean cognitive load), and diversity.
//!
//! ```text
//! cargo run --release --example interface_designer
//! ```

// Examples favor brevity: failing fast on a bad input is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use catapult::prelude::*;
use catapult::{cluster, core, csg, datasets, eval};
use rand::SeedableRng;

fn main() {
    let db = datasets::generate(&datasets::pubchem_profile(), 150, 23);
    let queries = datasets::random_queries(&db.graphs, 80, (4, 25), 29);

    // Cluster once, reuse the CSGs across every budget the designer tries
    // (clustering is the one-time cost the paper notes in §4.1).
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let clustering =
        cluster::cluster_graphs(&db.graphs, &cluster::ClusteringConfig::default(), &mut rng);
    let csgs = csg::build_csgs(&db.graphs, &clustering.clusters);
    println!(
        "repository of {} graphs summarized into {} CSGs in {:.2}s\n",
        db.len(),
        csgs.len(),
        clustering.elapsed.as_secs_f64()
    );

    println!(
        "{:>6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "gamma", "sizes", "avg_mu%", "MP%", "cog", "div", "PGT(s)"
    );
    for (gamma, eta_min, eta_max) in [
        (6usize, 3usize, 6usize),
        (12, 3, 8),
        (20, 3, 10),
        (30, 3, 12),
        (12, 5, 12),
        (12, 3, 5),
    ] {
        let budget = PatternBudget::new(eta_min, eta_max, gamma).expect("valid budget");
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let sel = core::find_canned_patterns(
            &db.graphs,
            &csgs,
            &SelectionConfig {
                budget,
                walks: 50,
                ..Default::default()
            },
            &mut rng,
        );
        let patterns = sel.patterns();
        let ev = eval::WorkloadEvaluation::evaluate(&patterns, &queries);
        println!(
            "{:>6} {:>10} {:>8.1} {:>8.1} {:>8.2} {:>8.2} {:>8.2}",
            gamma,
            format!("[{eta_min},{eta_max}]"),
            ev.mean_reduction() * 100.0,
            ev.missed_percentage(),
            eval::measures::mean_cog(&patterns),
            eval::measures::mean_diversity(&patterns),
            sel.elapsed.as_secs_f64()
        );
    }

    println!(
        "\nreading the table: bigger panels lower MP but raise search cost; \
         higher eta_min raises diversity but misses small queries (paper Fig. 13–16)."
    );
}
